//! The rule set: each rule enforces one simulator invariant.
//!
//! Rules are lexical, not type-aware — they err on the side of
//! flagging, and provably-safe sites carry a
//! `// nls-lint: allow(<rule>): <reason>` annotation so the safety
//! argument is written down next to the code it covers. See
//! DESIGN.md §9 for each rule's rationale.

use crate::source::SourceFile;

/// One finding at a file/line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Violation {
    pub rule: &'static str,
    pub file: String,
    pub line: u32,
    pub message: String,
    /// Witness path for interprocedural/path-sensitive findings
    /// (empty for plain lexical findings). Rendered as SARIF
    /// `codeFlows`/`relatedLocations` so code scanning shows *how*
    /// the bad state is reached, not just where it lands.
    pub path: Vec<PathStep>,
}

/// One step of a finding's witness path.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PathStep {
    pub file: String,
    pub line: u32,
    /// What happens at this step (`"Engine::step"`, `"lock acquired"`).
    pub label: String,
}

/// A pluggable lint rule.
pub trait Rule {
    /// Stable kebab-case id, used in reports and suppressions.
    fn id(&self) -> &'static str;
    /// Process exit code when this rule (and no higher-priority one)
    /// has findings.
    fn exit_code(&self) -> u8;
    /// One-line description for `--list-rules` and docs.
    fn summary(&self) -> &'static str;
    /// Per-file check. The engine filters suppressed findings.
    fn check_file(&self, _file: &SourceFile, _out: &mut Vec<Violation>) {}
    /// Whole-workspace check (cross-file invariants).
    fn check_workspace(&self, _files: &[SourceFile], _out: &mut Vec<Violation>) {}
}

/// Every rule, in exit-code priority order (lowest code first).
pub fn all_rules() -> Vec<Box<dyn Rule>> {
    vec![
        Box::new(NoPanic),
        Box::new(SliceIndex),
        Box::new(CastTruncate),
        Box::new(FsTraceRead),
        Box::new(HashOrder),
        Box::new(UncheckedCapacity),
        Box::new(ErrorExitMap),
    ]
}

fn violation(rule: &'static str, file: &SourceFile, line: u32, message: String) -> Violation {
    Violation { rule, file: file.rel.clone(), line, message, path: Vec::new() }
}

// ---------------------------------------------------------------- no-panic

/// Rule 1a: non-test code must not contain implicit-panic calls —
/// `.unwrap()`, `.expect(...)`, `panic!`, `unreachable!`, `todo!`,
/// `unimplemented!`. Failures must flow through `NlsError` so the
/// fault-tolerant pipeline (sweep retry, CLI exit classes) sees them.
pub struct NoPanic;

impl Rule for NoPanic {
    fn id(&self) -> &'static str {
        "no-panic"
    }
    fn exit_code(&self) -> u8 {
        10
    }
    fn summary(&self) -> &'static str {
        "no unwrap/expect/panic!-family in non-test code; return NlsError instead"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.is_test_file() {
            return;
        }
        let code = &file.code;
        for (i, t) in code.iter().enumerate() {
            if file.is_test_code(t.line) {
                continue;
            }
            let next_is = |c: char| code.get(i + 1).is_some_and(|n| n.is_punct(c));
            let prev_is_dot =
                i.checked_sub(1).and_then(|j| code.get(j)).is_some_and(|p| p.is_punct('.'));
            if prev_is_dot && next_is('(') && (t.is_ident("unwrap") || t.is_ident("expect")) {
                out.push(violation(
                    self.id(),
                    file,
                    t.line,
                    format!(".{}() panics; map the failure into NlsError", t.text),
                ));
            }
            let panic_macro =
                ["panic", "unreachable", "todo", "unimplemented"].iter().any(|m| t.is_ident(m));
            if panic_macro && next_is('!') {
                out.push(violation(
                    self.id(),
                    file,
                    t.line,
                    format!("{}! aborts the simulation; return an NlsError class", t.text),
                ));
            }
        }
    }
}

// ------------------------------------------------------------- slice-index

/// Rule 1b: non-test code may index slices only when the index is
/// visibly bounded at the use site: a literal (or literal range), or
/// an expression containing a masking/modulo operator. Anything else
/// must use `.get()`/iterators or carry an annotation stating the
/// bound.
pub struct SliceIndex;

/// Is the bracketed index expression visibly panic-free? Shared with
/// the panic-reachability pass, which classifies indexing sites the
/// same way this rule does.
pub(crate) fn index_expr_is_safe(expr: &[crate::lexer::Tok]) -> bool {
    use crate::lexer::TokKind;
    if expr.is_empty() {
        return true; // `v[]` is not valid Rust; treat as non-index
    }
    // Masked (`&`), wrapped (`%`), or clamped-to-last (`len - 1`)
    // indexes are bounded by construction.
    if expr.iter().any(|t| t.is_punct('&') || t.is_punct('%')) {
        return true;
    }
    // Literals and literal ranges (`[0]`, `[2..10]`, `[..4]`, `[..]`)
    // index fixed-layout frames; a wrong bound is caught by the very
    // first record in any test or run, not data-dependent.
    expr.iter().all(|t| t.kind == TokKind::Number || t.is_punct('.') || t.is_punct('='))
}

impl Rule for SliceIndex {
    fn id(&self) -> &'static str {
        "slice-index"
    }
    fn exit_code(&self) -> u8 {
        11
    }
    fn summary(&self) -> &'static str {
        "slice indexes must be literals or visibly masked; otherwise use get() or annotate the bound"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.is_test_file() {
            return;
        }
        let code = &file.code;
        for (i, t) in code.iter().enumerate() {
            if !t.is_punct('[') || i == 0 {
                continue;
            }
            if file.is_test_code(t.line) {
                continue;
            }
            if !bracket_is_index(code, i) {
                continue;
            }
            let Some(close) = matching_punct(code, i, '[', ']') else { continue };
            if !index_expr_is_safe(code.get(i + 1..close).unwrap_or(&[])) {
                out.push(violation(
                    self.id(),
                    file,
                    t.line,
                    "index not visibly bounded (no mask/literal); use .get() or annotate the bound"
                        .to_string(),
                ));
            }
        }
    }
}

/// Does the `[` at `code[i]` open an *index* expression? `#[attr]`,
/// `vec![]`, `[T; N]` types, array literals, and slice patterns
/// (`let [a, b] = ..`) all have non-expression predecessors. Shared
/// with the panic-reachability pass so the two layers classify
/// indexing sites identically.
pub(crate) fn bracket_is_index(code: &[crate::lexer::Tok], i: usize) -> bool {
    let Some(prev) = i.checked_sub(1).and_then(|j| code.get(j)) else { return false };
    // Keywords before `[` start an array literal, type, or
    // destructuring pattern, not an index expression.
    const NON_EXPR_KEYWORDS: [&str; 9] =
        ["mut", "return", "break", "in", "as", "else", "move", "ref", "let"];
    (matches!(prev.kind, crate::lexer::TokKind::Ident)
        && !NON_EXPR_KEYWORDS.iter().any(|k| prev.is_ident(k)))
        || prev.is_punct(')')
        || prev.is_punct(']')
}

pub(crate) fn matching_punct(
    code: &[crate::lexer::Tok],
    start: usize,
    open: char,
    close: char,
) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in code.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

// ----------------------------------------------------------- cast-truncate

/// Rule 2: in the model crates (`core`, `cost`, `predictors`), `as`
/// casts to integer types narrower than 64 bits silently wrap — RBE
/// area, access-time, and penalty math must use `try_from` or the
/// checked helpers so a widened configuration cannot corrupt results.
pub struct CastTruncate;

const NARROW_INTS: [&str; 6] = ["u8", "u16", "u32", "i8", "i16", "i32"];

impl Rule for CastTruncate {
    fn id(&self) -> &'static str {
        "cast-truncate"
    }
    fn exit_code(&self) -> u8 {
        12
    }
    fn summary(&self) -> &'static str {
        "no truncating `as` casts to narrow ints in core/cost/predictors; use try_from/checked helpers"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if !(file.in_crate("core") || file.in_crate("cost") || file.in_crate("predictors")) {
            return;
        }
        let code = &file.code;
        for (i, t) in code.iter().enumerate() {
            if !t.is_ident("as") || file.is_test_code(t.line) {
                continue;
            }
            let Some(target) = code.get(i + 1) else { continue };
            if NARROW_INTS.iter().any(|n| target.is_ident(n)) {
                out.push(violation(
                    self.id(),
                    file,
                    t.line,
                    format!(
                        "`as {}` can truncate; use {}::try_from or a checked helper",
                        target.text, target.text
                    ),
                ));
            }
        }
    }
}

// ----------------------------------------------------------- fs-trace-read

/// Rule 3: only `crates/trace` may read files directly — everything
/// else goes through `TraceReader`/`RecoveryPolicy`, so corrupt bytes
/// always hit the recovery layer instead of ad-hoc parsing. Non-trace
/// readers (e.g. checkpoint JSON) must annotate why their input is
/// not trace data.
pub struct FsTraceRead;

impl Rule for FsTraceRead {
    fn id(&self) -> &'static str {
        "fs-trace-read"
    }
    fn exit_code(&self) -> u8 {
        13
    }
    fn summary(&self) -> &'static str {
        "file reads outside crates/trace must use the TraceReader layer or annotate why not trace data"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.in_crate("trace") || file.is_test_file() {
            return;
        }
        let code = &file.code;
        for (i, t) in code.iter().enumerate() {
            if file.is_test_code(t.line) {
                continue;
            }
            // `File::open(..)` or `fs::read*(..)`.
            let qualified_by = |name: &str| {
                i >= 3
                    && code.get(i - 1).is_some_and(|t| t.is_punct(':'))
                    && code.get(i - 2).is_some_and(|t| t.is_punct(':'))
                    && code.get(i - 3).is_some_and(|t| t.is_ident(name))
            };
            let hit = (t.is_ident("open") && qualified_by("File"))
                || ((t.is_ident("read")
                    || t.is_ident("read_to_string")
                    || t.is_ident("read_to_end"))
                    && qualified_by("fs"));
            if hit {
                out.push(violation(
                    self.id(),
                    file,
                    t.line,
                    "direct file read outside crates/trace; route trace bytes through TraceReader"
                        .to_string(),
                ));
            }
        }
    }
}

// -------------------------------------------------------------- hash-order

/// Rule 4: `HashMap`/`HashSet` iteration order varies per process, so
/// any aggregation or serialized output built from it is
/// nondeterministic — results must be bit-exact across runs for the
/// paper's tables to be reproducible. Use `BTreeMap`/`BTreeSet`, or
/// annotate a site whose iteration order provably never escapes.
pub struct HashOrder;

impl Rule for HashOrder {
    fn id(&self) -> &'static str {
        "hash-order"
    }
    fn exit_code(&self) -> u8 {
        14
    }
    fn summary(&self) -> &'static str {
        "no HashMap/HashSet in non-test code (iteration order); use BTreeMap/BTreeSet"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.is_test_file() {
            return;
        }
        for t in &file.code {
            if (t.is_ident("HashMap") || t.is_ident("HashSet")) && !file.is_test_code(t.line) {
                out.push(violation(
                    self.id(),
                    file,
                    t.line,
                    format!(
                        "{} iteration order is nondeterministic; use the BTree equivalent",
                        t.text
                    ),
                ));
            }
        }
    }
}

// ------------------------------------------------------ unchecked-capacity

/// Rule 5: `with_capacity(n)` where `n` comes straight from decoded
/// input lets a corrupt header request gigabytes before the first
/// record is validated (the PR 1 bug class). The argument must be a
/// literal, a `len()` of live data, or visibly capped (`.min(...)` /
/// a `MAX_*` constant); anything else needs an annotation.
pub struct UncheckedCapacity;

fn capacity_arg_is_safe(expr: &[crate::lexer::Tok]) -> bool {
    use crate::lexer::TokKind;
    if expr.iter().all(|t| t.kind == TokKind::Number) {
        return true;
    }
    expr.iter().enumerate().any(|(k, t)| {
        t.is_ident("len")
            || t.is_ident("min")
            || (t.kind == TokKind::Ident && t.text.starts_with("MAX_"))
            // `CAP`-style screaming consts are caps by convention.
            || (t.kind == TokKind::Ident
                && t.text.len() > 1
                && t.text.chars().all(|c| c.is_ascii_uppercase() || c == '_')
                && expr.len() == 1
                && k == 0)
    })
}

impl Rule for UncheckedCapacity {
    fn id(&self) -> &'static str {
        "unchecked-capacity"
    }
    fn exit_code(&self) -> u8 {
        15
    }
    fn summary(&self) -> &'static str {
        "with_capacity argument must be a literal, len(), or visibly capped (min/MAX_*)"
    }

    fn check_file(&self, file: &SourceFile, out: &mut Vec<Violation>) {
        if file.is_test_file() {
            return;
        }
        let code = &file.code;
        for (i, t) in code.iter().enumerate() {
            if !t.is_ident("with_capacity") || file.is_test_code(t.line) {
                continue;
            }
            if !code.get(i + 1).is_some_and(|n| n.is_punct('(')) {
                continue;
            }
            let Some(close) = matching_punct(code, i + 1, '(', ')') else { continue };
            if !capacity_arg_is_safe(code.get(i + 2..close).unwrap_or(&[])) {
                out.push(violation(
                    self.id(),
                    file,
                    t.line,
                    "capacity not visibly bounded; cap it (e.g. .min(MAX)) before allocating"
                        .to_string(),
                ));
            }
        }
    }
}

// ----------------------------------------------------------- error-exit-map

/// Rule 6: every public `NlsError` variant must map to an explicit
/// exit code (no wildcard arm that would silently absorb a new
/// class), and the CLI layer must mention each class so `nls help`
/// and the e2e tests stay in sync with the taxonomy.
pub struct ErrorExitMap;

impl ErrorExitMap {
    /// Variant names of `pub enum NlsError` in `error.rs`.
    fn enum_variants(file: &SourceFile) -> Vec<(String, u32)> {
        let code = &file.code;
        let mut out = Vec::new();
        for (i, t) in code.iter().enumerate() {
            if !t.is_ident("enum") || !code.get(i + 1).is_some_and(|n| n.is_ident("NlsError")) {
                continue;
            }
            let tail = code.get(i..).unwrap_or(&[]);
            let Some(open) = tail.iter().position(|t| t.is_punct('{')) else { continue };
            let Some(close) = matching_punct(code, i + open, '{', '}') else { continue };
            // Variants are idents at depth 1 following `{` or `,`.
            let mut depth = 0i64;
            let mut expect_variant = true;
            for t in code.get(i + open..=close).unwrap_or(&[]) {
                if t.is_punct('{') || t.is_punct('(') {
                    depth += 1;
                } else if t.is_punct('}') || t.is_punct(')') {
                    depth -= 1;
                } else if depth == 1 {
                    if t.is_punct(',') {
                        expect_variant = true;
                    } else if expect_variant && t.kind == crate::lexer::TokKind::Ident {
                        out.push((t.text.clone(), t.line));
                        expect_variant = false;
                    }
                }
            }
            break;
        }
        out
    }

    /// `(variant, code, line)` triples parsed from `exit_code()`'s
    /// arms: each `NlsError::V … => <number>` pattern with the first
    /// numeric literal that follows it.
    fn exit_code_pairs(body: &[crate::lexer::Tok]) -> Vec<(String, String, u32)> {
        let mut out = Vec::new();
        let mut i = 0usize;
        while let Some(t) = body.get(i) {
            let variant = (t.is_ident("NlsError")
                && body.get(i + 1).is_some_and(|p| p.is_punct(':'))
                && body.get(i + 2).is_some_and(|p| p.is_punct(':')))
            .then(|| body.get(i + 3))
            .flatten();
            let Some(v) = variant else {
                i += 1;
                continue;
            };
            let name = v.text.clone();
            let line = v.line;
            // The arm's code is the first number before the next arm.
            let mut j = i + 4;
            while let Some(t) = body.get(j) {
                if t.kind == crate::lexer::TokKind::Number {
                    out.push((name, t.text.clone(), line));
                    break;
                }
                if t.is_ident("NlsError") {
                    break;
                }
                j += 1;
            }
            i = j.max(i + 1);
        }
        out
    }

    /// Token span of `fn <name>` body in `file`, if present.
    fn fn_body<'a>(file: &'a SourceFile, name: &str) -> Option<&'a [crate::lexer::Tok]> {
        let code = &file.code;
        for (i, t) in code.iter().enumerate() {
            if t.is_ident("fn") && code.get(i + 1).is_some_and(|n| n.is_ident(name)) {
                let tail = code.get(i..)?;
                let open = i + tail.iter().position(|t| t.is_punct('{'))?;
                let close = matching_punct(code, open, '{', '}')?;
                return code.get(open..=close);
            }
        }
        None
    }
}

impl Rule for ErrorExitMap {
    fn id(&self) -> &'static str {
        "error-exit-map"
    }
    fn exit_code(&self) -> u8 {
        16
    }
    fn summary(&self) -> &'static str {
        "every NlsError variant needs an explicit exit_code/class arm and a CLI mention"
    }

    fn check_workspace(&self, files: &[SourceFile], out: &mut Vec<Violation>) {
        // The analysis-pass catalogue is under the same contract as
        // the NlsError table: the passes/mod.rs module doc must carry
        // a `| `<id>` | <code> |` row for every registered pass, so a
        // new pass (or a renumbered exit code) with a stale table is
        // a finding.
        if let Some(mod_rs) = files.iter().find(|f| f.rel == "crates/lint/src/passes/mod.rs") {
            for pass in crate::passes::all_passes() {
                let id_cell = format!("`{}`", pass.id());
                let code_cell = format!("| {} |", pass.exit_code());
                let documented = mod_rs
                    .comments
                    .iter()
                    .any(|c| c.text.contains(&id_cell) && c.text.contains(&code_cell));
                if !documented {
                    out.push(Violation {
                        rule: self.id(),
                        path: Vec::new(),
                        file: mod_rs.rel.clone(),
                        line: 1,
                        message: format!(
                            "pass {id_cell} (exit {}) is missing from the passes/mod.rs \
                             module-doc table (want a `| {id_cell} {code_cell}` row)",
                            pass.exit_code()
                        ),
                    });
                }
            }
        }
        let Some(error_rs) = files.iter().find(|f| f.rel == "crates/core/src/error.rs") else {
            return;
        };
        let variants = Self::enum_variants(error_rs);
        if variants.is_empty() {
            out.push(Violation {
                rule: self.id(),
                path: Vec::new(),
                file: error_rs.rel.clone(),
                line: 1,
                message: "could not find `enum NlsError` variants".to_string(),
            });
            return;
        }
        for fn_name in ["exit_code", "class"] {
            let Some(body) = Self::fn_body(error_rs, fn_name) else {
                out.push(Violation {
                    rule: self.id(),
                    path: Vec::new(),
                    file: error_rs.rel.clone(),
                    line: 1,
                    message: format!("NlsError is missing fn {fn_name}()"),
                });
                continue;
            };
            for (v, line) in &variants {
                let mapped = body.windows(4).any(|w| {
                    w[0].is_ident("NlsError")
                        && w[1].is_punct(':')
                        && w[2].is_punct(':')
                        && w[3].is_ident(v)
                });
                if !mapped {
                    out.push(Violation {
                        rule: self.id(),
                        path: Vec::new(),
                        file: error_rs.rel.clone(),
                        line: *line,
                        message: format!("variant {v} has no explicit arm in {fn_name}()"),
                    });
                }
            }
            // A wildcard arm would silently absorb future variants.
            if body.windows(2).any(|w| w[0].is_ident("_") && w[1].is_punct('=')) {
                out.push(Violation {
                    rule: self.id(),
                    path: Vec::new(),
                    file: error_rs.rel.clone(),
                    line: body[0].line,
                    message: format!("{fn_name}() must not use a wildcard `_ =>` arm"),
                });
            }
        }
        // The module doc's exit-code table is the contract the README
        // and DESIGN.md tables copy from — it must carry a row for
        // every (variant, code) pair exit_code() actually returns.
        if let Some(body) = Self::fn_body(error_rs, "exit_code") {
            for (v, code, line) in Self::exit_code_pairs(body) {
                let variant_ref = format!("NlsError::{v}");
                let code_cell = format!("| {code} |");
                let documented = error_rs
                    .comments
                    .iter()
                    .any(|c| c.text.contains(&variant_ref) && c.text.contains(&code_cell));
                if !documented {
                    out.push(Violation {
                        rule: self.id(),
                        path: Vec::new(),
                        file: error_rs.rel.clone(),
                        line,
                        message: format!(
                            "exit code {code} for {v} is missing from the module doc table \
                             (want a `| <class> | [`NlsError::{v}`] | {code} |` row)"
                        ),
                    });
                }
            }
        }
        // The CLI surface must acknowledge each class by name.
        let cli: Vec<&SourceFile> =
            files.iter().filter(|f| f.rel.starts_with("crates/cli/src/")).collect();
        for (v, line) in &variants {
            let mentioned = cli.iter().any(|f| f.code.iter().any(|t| t.text == *v));
            if !mentioned {
                out.push(Violation {
                    rule: self.id(),
                    path: Vec::new(),
                    file: error_rs.rel.clone(),
                    line: *line,
                    message: format!("variant {v} is never handled or mentioned in crates/cli"),
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn check_one(rule: &dyn Rule, rel: &str, src: &str) -> Vec<Violation> {
        let f = SourceFile::parse(rel, src);
        let mut out = Vec::new();
        rule.check_file(&f, &mut out);
        out
    }

    #[test]
    fn rule_ids_and_exit_codes_are_unique() {
        let rules = all_rules();
        let mut ids: Vec<_> = rules.iter().map(|r| r.id()).collect();
        let mut codes: Vec<_> = rules.iter().map(|r| r.exit_code()).collect();
        ids.sort_unstable();
        ids.dedup();
        codes.sort_unstable();
        codes.dedup();
        assert_eq!(ids.len(), rules.len());
        assert_eq!(codes.len(), rules.len());
        assert!(codes.iter().all(|&c| c >= 10), "rule codes stay clear of 0/1/2/6");
    }

    #[test]
    fn no_panic_flags_only_live_code() {
        let src = "fn f() { x.unwrap(); }\n#[cfg(test)]\nmod t { fn g() { y.unwrap(); } }\n";
        let v = check_one(&NoPanic, "crates/x/src/a.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].line, 1);
    }

    #[test]
    fn no_panic_ignores_unwrap_or_and_strings() {
        let src = "fn f() { x.unwrap_or(0); let s = \".unwrap()\"; } // .unwrap()\n";
        assert!(check_one(&NoPanic, "crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn slice_index_distinguishes_masked_from_raw() {
        let bad = "fn f(v: &[u8], i: usize) -> u8 { v[i] }";
        let masked = "fn f(v: &[u8], i: usize) -> u8 { v[i & 7] }";
        let lit = "fn f(v: &[u8]) -> u8 { v[0] + v[1] }";
        let range = "fn f(v: &[u8]) -> &[u8] { &v[2..10] }";
        assert_eq!(check_one(&SliceIndex, "crates/x/src/a.rs", bad).len(), 1);
        assert!(check_one(&SliceIndex, "crates/x/src/a.rs", masked).is_empty());
        assert!(check_one(&SliceIndex, "crates/x/src/a.rs", lit).is_empty());
        assert!(check_one(&SliceIndex, "crates/x/src/a.rs", range).is_empty());
    }

    #[test]
    fn slice_index_skips_attributes_types_and_macros() {
        let src = "#[derive(Debug)]\nstruct S { a: [u8; 4] }\nfn f() { let v = vec![1, 2]; }\n";
        assert!(check_one(&SliceIndex, "crates/x/src/a.rs", src).is_empty());
    }

    #[test]
    fn cast_truncate_is_scoped_to_model_crates() {
        let src = "fn f(x: u64) -> u32 { x as u32 }";
        assert_eq!(check_one(&CastTruncate, "crates/core/src/a.rs", src).len(), 1);
        assert_eq!(check_one(&CastTruncate, "crates/cost/src/a.rs", src).len(), 1);
        assert!(check_one(&CastTruncate, "crates/cli/src/a.rs", src).is_empty());
        let widen = "fn f(x: u8) -> u64 { x as u64 }";
        assert!(check_one(&CastTruncate, "crates/core/src/a.rs", widen).is_empty());
    }

    #[test]
    fn fs_trace_read_only_outside_trace_crate() {
        let src = "fn f() { let _ = std::fs::File::open(\"t.nlst\"); }";
        assert_eq!(check_one(&FsTraceRead, "crates/cli/src/a.rs", src).len(), 1);
        assert!(check_one(&FsTraceRead, "crates/trace/src/a.rs", src).is_empty());
        let write = "fn f() { std::fs::write(\"out.csv\", \"x\").ok(); }";
        assert!(check_one(&FsTraceRead, "crates/cli/src/a.rs", write).is_empty());
    }

    #[test]
    fn hash_order_requires_btree() {
        let src = "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32>; }\n";
        assert_eq!(check_one(&HashOrder, "crates/core/src/a.rs", src).len(), 2);
        let ok = "use std::collections::BTreeMap;\n";
        assert!(check_one(&HashOrder, "crates/core/src/a.rs", ok).is_empty());
    }

    #[test]
    fn unchecked_capacity_needs_a_visible_cap() {
        let bad = "fn f(n: usize) { let v: Vec<u8> = Vec::with_capacity(n); }";
        let capped =
            "fn f(n: usize) { let v: Vec<u8> = Vec::with_capacity(n.min(MAX_RECORDS)); }";
        let lit = "fn f() { let v: Vec<u8> = Vec::with_capacity(64); }";
        let len = "fn f(xs: &[u8]) { let v: Vec<u8> = Vec::with_capacity(xs.len()); }";
        assert_eq!(check_one(&UncheckedCapacity, "crates/x/src/a.rs", bad).len(), 1);
        assert!(check_one(&UncheckedCapacity, "crates/x/src/a.rs", capped).is_empty());
        assert!(check_one(&UncheckedCapacity, "crates/x/src/a.rs", lit).is_empty());
        assert!(check_one(&UncheckedCapacity, "crates/x/src/a.rs", len).is_empty());
    }

    #[test]
    fn error_exit_map_catches_missing_arm_and_wildcard() {
        let error_rs = "pub enum NlsError { Usage(String), Trace(T) }\n\
            impl NlsError {\n\
            pub fn exit_code(&self) -> u8 { match self { NlsError::Usage(_) => 2, _ => 1 } }\n\
            pub fn class(&self) -> &str { match self { NlsError::Usage(_) => \"u\", NlsError::Trace(_) => \"t\" } }\n\
            }\n";
        let cli = "fn f(e: &NlsError) { if let NlsError::Usage(u) = e {} match e { NlsError::Trace(_) => (), _ => () } }";
        let files = vec![
            SourceFile::parse("crates/core/src/error.rs", error_rs),
            SourceFile::parse("crates/cli/src/main.rs", cli),
        ];
        let mut out = Vec::new();
        ErrorExitMap.check_workspace(&files, &mut out);
        let msgs: Vec<_> = out.iter().map(|v| v.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("Trace") && m.contains("exit_code")),
            "{msgs:?}"
        );
        assert!(msgs.iter().any(|m| m.contains("wildcard")), "{msgs:?}");
    }

    #[test]
    fn error_exit_map_passes_a_complete_taxonomy() {
        let error_rs = "//! | bad invocation | [`NlsError::Usage`] | 2 |\n\
            pub enum NlsError { Usage(String) }\n\
            impl NlsError {\n\
            pub fn exit_code(&self) -> u8 { match self { NlsError::Usage(_) => 2 } }\n\
            pub fn class(&self) -> &str { match self { NlsError::Usage(_) => \"usage\" } }\n\
            }\n";
        let cli = "fn f(e: &NlsError) { if let NlsError::Usage(_) = e {} }";
        let files = vec![
            SourceFile::parse("crates/core/src/error.rs", error_rs),
            SourceFile::parse("crates/cli/src/main.rs", cli),
        ];
        let mut out = Vec::new();
        ErrorExitMap.check_workspace(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }

    #[test]
    fn error_exit_map_requires_the_doc_table_row() {
        // The arm says 8 but the doc table still says 9 (and drops
        // the variant entirely for Io): both rows must be flagged.
        let error_rs = "//! | work-ledger failure | [`NlsError::Ledger`] | 9 |\n\
            pub enum NlsError { Ledger(String), Io(E) }\n\
            impl NlsError {\n\
            pub fn exit_code(&self) -> u8 { match self { NlsError::Ledger(_) => 8, NlsError::Io(_) => 6 } }\n\
            pub fn class(&self) -> &str { match self { NlsError::Ledger(_) => \"ledger\", NlsError::Io(_) => \"io\" } }\n\
            }\n";
        let cli = "fn f(e: &NlsError) { match e { NlsError::Ledger(_) => (), NlsError::Io(_) => () }; }";
        let files = vec![
            SourceFile::parse("crates/core/src/error.rs", error_rs),
            SourceFile::parse("crates/cli/src/main.rs", cli),
        ];
        let mut out = Vec::new();
        ErrorExitMap.check_workspace(&files, &mut out);
        let msgs: Vec<_> = out.iter().map(|v| v.message.as_str()).collect();
        assert!(
            msgs.iter().any(|m| m.contains("exit code 8 for Ledger")),
            "stale table row must be flagged: {msgs:?}"
        );
        assert!(
            msgs.iter().any(|m| m.contains("exit code 6 for Io")),
            "missing table row must be flagged: {msgs:?}"
        );
        assert_eq!(out.len(), 2, "{out:?}");
    }

    #[test]
    fn error_exit_map_requires_a_pass_table_row_per_registered_pass() {
        // A passes/mod.rs whose doc table stops at 22 must be flagged
        // once per missing pass (the concurrency and path-sensitive
        // passes here).
        let mod_rs = "//! | `panic-reach` | 18 |\n\
            //! | `determinism` | 19 |\n\
            //! | `unit-safety` | 20 |\n\
            //! | `artifact-conformance` | 21 |\n\
            //! | `cancellation-reach` | 22 |\n\
            pub fn all_passes() {}\n";
        let files = vec![SourceFile::parse("crates/lint/src/passes/mod.rs", mod_rs)];
        let mut out = Vec::new();
        ErrorExitMap.check_workspace(&files, &mut out);
        let msgs: Vec<_> = out.iter().map(|v| v.message.as_str()).collect();
        for missing in [
            "atomics-discipline",
            "signal-safety",
            "fs-durability",
            "hot-path-alloc",
            "lock-order",
            "resource-leak",
            "stale-waiver",
        ] {
            assert!(
                msgs.iter().any(|m| m.contains(missing)),
                "{missing} must be flagged: {msgs:?}"
            );
        }
        assert_eq!(out.len(), 7, "documented passes stay clean: {out:?}");
    }

    #[test]
    fn error_exit_map_accepts_a_complete_pass_table() {
        let mut mod_rs = String::new();
        for pass in crate::passes::all_passes() {
            mod_rs.push_str(&format!("//! | `{}` | {} |\n", pass.id(), pass.exit_code()));
        }
        mod_rs.push_str("pub fn all_passes() {}\n");
        let files = vec![SourceFile::parse("crates/lint/src/passes/mod.rs", &mod_rs)];
        let mut out = Vec::new();
        ErrorExitMap.check_workspace(&files, &mut out);
        assert!(out.is_empty(), "{out:?}");
    }
}
