//! Per-file lint context: token stream, test-code regions, and
//! suppression annotations.

use crate::lexer::{tokenize, Tok, TokKind};

/// One `// nls-lint: allow(rule, ...): reason` annotation.
#[derive(Debug, Clone)]
pub struct Suppression {
    pub line: u32,
    pub rules: Vec<String>,
    /// Empty when the mandatory reason is missing (itself an error).
    pub reason: String,
}

/// A lexed source file plus everything rules need to know about it.
#[derive(Debug)]
pub struct SourceFile {
    /// Workspace-relative path with `/` separators (stable across OSes
    /// for report output and path-scoped rules).
    pub rel: String,
    /// All tokens except comments, in source order.
    pub code: Vec<Tok>,
    /// Comment tokens only (suppression parsing, doc checks).
    pub comments: Vec<Tok>,
    /// Line ranges (inclusive) covered by `#[cfg(test)]` / `#[test]`
    /// items.
    pub test_regions: Vec<(u32, u32)>,
    /// Parsed suppression annotations.
    pub suppressions: Vec<Suppression>,
    /// Total number of source lines (for region clamping).
    pub lines: u32,
}

impl SourceFile {
    /// Lexes `text` as the file at `rel` (use `/` separators).
    pub fn parse(rel: &str, text: &str) -> SourceFile {
        let toks = tokenize(text);
        let (code, comments): (Vec<Tok>, Vec<Tok>) =
            toks.into_iter().partition(|t| t.kind != TokKind::Comment);
        let lines = text.lines().count() as u32;
        let test_regions = find_test_regions(&code);
        let suppressions = comments.iter().filter_map(parse_suppression).collect();
        SourceFile { rel: rel.to_string(), code, comments, test_regions, suppressions, lines }
    }

    /// True when the whole file is test/example/bench scaffolding:
    /// under a `tests/`, `examples/`, or `benches/` directory.
    pub fn is_test_file(&self) -> bool {
        self.rel.split('/').any(|part| matches!(part, "tests" | "examples" | "benches"))
    }

    /// True when `line` falls inside a `#[cfg(test)]`/`#[test]` item
    /// (or the file as a whole is test scaffolding).
    pub fn is_test_code(&self, line: u32) -> bool {
        self.is_test_file()
            || self.test_regions.iter().any(|&(lo, hi)| lo <= line && line <= hi)
    }

    /// True when the file lives under `crates/<name>/`.
    pub fn in_crate(&self, name: &str) -> bool {
        self.rel.strip_prefix("crates/").is_some_and(|rest| {
            rest.strip_prefix(name).is_some_and(|tail| tail.starts_with('/'))
        })
    }

    /// A copy of this file with every waiver removed. The
    /// stale-waiver pass re-runs the other checks on this view: a
    /// waiver that suppresses nothing on the stripped file is dead
    /// weight and gets reported.
    pub fn without_suppressions(&self) -> SourceFile {
        SourceFile {
            rel: self.rel.clone(),
            code: self.code.clone(),
            comments: self.comments.clone(),
            test_regions: self.test_regions.clone(),
            suppressions: Vec::new(),
            lines: self.lines,
        }
    }

    /// True when a well-formed suppression for `rule` covers `line`
    /// (annotations apply to their own line and the one below). The
    /// `all` wildcard covers every rule *except* `stale-waiver`: a
    /// wildcard that could waive its own staleness check would be
    /// immune to rot forever, so only a waiver that names
    /// `stale-waiver` explicitly can silence that pass.
    pub fn is_suppressed(&self, rule: &str, line: u32) -> bool {
        self.suppressions.iter().any(|s| {
            !s.reason.is_empty()
                && (s.line == line || s.line + 1 == line)
                && s.rules.iter().any(|r| r == rule || (r == "all" && rule != "stale-waiver"))
        })
    }
}

/// Parses `nls-lint: allow(rule-a, rule-b): reason` out of a comment
/// token. Returns `None` for comments without the marker; a marker
/// with a malformed tail yields a `Suppression` with empty rules or
/// reason, which the engine reports as an error.
fn parse_suppression(tok: &Tok) -> Option<Suppression> {
    let text = tok.text.trim_start_matches(['/', '*', '!']).trim();
    let rest = text.strip_prefix("nls-lint:")?.trim_start();
    let mut rules = Vec::new();
    let mut reason = String::new();
    if let Some(tail) = rest.strip_prefix("allow") {
        let tail = tail.trim_start();
        if let Some(open) = tail.strip_prefix('(') {
            if let Some((inner, after)) = open.split_once(')') {
                rules = inner
                    .split(',')
                    .map(|r| r.trim().to_string())
                    .filter(|r| !r.is_empty())
                    .collect();
                if let Some(r) = after.trim_start().strip_prefix(':') {
                    reason = r.trim().to_string();
                }
            }
        }
    }
    Some(Suppression { line: tok.line, rules, reason })
}

/// Scans for `#[cfg(test)]` / `#[test]`-attributed items and returns
/// the line span of each, attribute through closing brace (or `;`).
fn find_test_regions(code: &[Tok]) -> Vec<(u32, u32)> {
    let mut regions = Vec::new();
    let mut i = 0;
    while let Some(tok) = code.get(i) {
        if tok.is_punct('#') && code.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let start_line = tok.line;
            let Some(close) = matching(code, i + 1, '[', ']') else { break };
            if attr_is_test(code.get(i + 2..close).unwrap_or(&[])) {
                // Skip any further attributes, then span the item.
                let mut j = close + 1;
                while code.get(j).is_some_and(|t| t.is_punct('#'))
                    && code.get(j + 1).is_some_and(|t| t.is_punct('['))
                {
                    match matching(code, j + 1, '[', ']') {
                        Some(c) => j = c + 1,
                        None => return regions,
                    }
                }
                let end = item_end(code, j);
                regions.push((start_line, end));
                i = j;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    regions
}

/// Does an attribute body (tokens between `[` and `]`) mark test-only
/// code? Matches `test`, `cfg(test)`, and `cfg(any(test, ...))`.
fn attr_is_test(body: &[Tok]) -> bool {
    match body.first() {
        Some(t) if t.is_ident("test") && body.len() == 1 => true,
        Some(t) if t.is_ident("cfg") => body.iter().any(|t| t.is_ident("test")),
        _ => false,
    }
}

/// Index of the punct matching `open` at `start` (which must hold
/// `open`), honoring nesting.
fn matching(code: &[Tok], start: usize, open: char, close: char) -> Option<usize> {
    let mut depth = 0i64;
    for (k, t) in code.iter().enumerate().skip(start) {
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
            if depth == 0 {
                return Some(k);
            }
        }
    }
    None
}

/// Last line of the item starting at token `j`: through the matching
/// `}` of its first brace, or the first `;` before any brace.
fn item_end(code: &[Tok], j: usize) -> u32 {
    for (k, t) in code.iter().enumerate().skip(j) {
        if t.is_punct(';') {
            return t.line;
        }
        if t.is_punct('{') {
            return match matching(code, k, '{', '}').and_then(|c| code.get(c)) {
                Some(close) => close.line,
                None => code.last().map_or(t.line, |l| l.line),
            };
        }
    }
    code.last().map_or(0, |l| l.line)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cfg_test_module_is_a_region() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\n",
        );
        assert!(!f.is_test_code(1));
        assert!(f.is_test_code(2));
        assert!(f.is_test_code(4));
        assert!(f.is_test_code(5));
    }

    #[test]
    fn test_attribute_with_more_attributes() {
        let f = SourceFile::parse(
            "crates/x/src/lib.rs",
            "#[test]\n#[ignore]\nfn t() {\n    x();\n}\nfn live() {}\n",
        );
        assert!(f.is_test_code(4));
        assert!(!f.is_test_code(6));
    }

    #[test]
    fn paths_classify_test_files() {
        assert!(SourceFile::parse("crates/x/tests/a.rs", "").is_test_file());
        assert!(SourceFile::parse("examples/q.rs", "").is_test_file());
        assert!(!SourceFile::parse("crates/x/src/a.rs", "").is_test_file());
    }

    #[test]
    fn suppression_parses_rules_and_reason() {
        let f = SourceFile::parse(
            "crates/x/src/a.rs",
            "// nls-lint: allow(no-panic, slice-index): bounded by mask\nlet x = v[i];\n",
        );
        assert!(f.is_suppressed("no-panic", 2));
        assert!(f.is_suppressed("slice-index", 1));
        assert!(!f.is_suppressed("cast-truncate", 2));
        assert!(!f.is_suppressed("no-panic", 3));
    }

    #[test]
    fn suppression_without_reason_does_not_apply() {
        let f = SourceFile::parse("crates/x/src/a.rs", "// nls-lint: allow(no-panic)\nx();\n");
        assert!(!f.is_suppressed("no-panic", 2));
        assert_eq!(f.suppressions.len(), 1);
        assert!(f.suppressions[0].reason.is_empty());
    }

    #[test]
    fn in_crate_matches_exact_component() {
        let f = SourceFile::parse("crates/core/src/a.rs", "");
        assert!(f.in_crate("core"));
        assert!(!f.in_crate("cor"));
        assert!(!f.in_crate("cost"));
    }
}
