//! The workspace symbol table: every function definition across all
//! crates, indexed for approximate call resolution.
//!
//! Functions are identified by a [`FnId`] (file index, item index)
//! and looked up three ways: by qualified name (`Type::method`), by
//! method name across all impls (for `.method(..)` receiver-blind
//! resolution), and by bare name for free functions. Test functions
//! are indexed but marked, so analysis passes can keep them out of
//! production reachability.

use std::collections::BTreeMap;

use crate::parser::{AtomicDecl, FileItems, Item, ItemKind};

/// A function's identity: `(file index, item index)` into the
/// parallel `files`/`items` arrays held by the analysis.
pub type FnId = (usize, usize);

/// Workspace-wide function index.
#[derive(Debug, Default)]
pub struct SymbolTable {
    /// `Owner::name` → definitions (trait impls can collide; all are
    /// kept — resolution is deliberately an over-approximation).
    by_qual: BTreeMap<String, Vec<FnId>>,
    /// Method name → definitions with *any* owner.
    methods: BTreeMap<String, Vec<FnId>>,
    /// Free-function name → definitions without an owner.
    free: BTreeMap<String, Vec<FnId>>,
    /// Atomic variable/field name → `(file index, decl index)` into
    /// each file's `atomics` list. Name-keyed, like method
    /// resolution: two fields with the same name across files share
    /// one entry (a documented over-approximation).
    atomics: BTreeMap<String, Vec<(usize, usize)>>,
}

impl SymbolTable {
    /// Indexes every function item of `files`.
    pub fn build(files: &[FileItems]) -> SymbolTable {
        let mut t = SymbolTable::default();
        for (fi, file) in files.iter().enumerate() {
            for (ii, item) in file.items.iter().enumerate() {
                if item.kind != ItemKind::Fn {
                    continue;
                }
                let id = (fi, ii);
                t.by_qual.entry(item.qual()).or_default().push(id);
                match &item.owner {
                    Some(_) => t.methods.entry(item.name.clone()).or_default().push(id),
                    None => t.free.entry(item.name.clone()).or_default().push(id),
                }
            }
            for (di, decl) in file.atomics.iter().enumerate() {
                t.atomics.entry(decl.name.clone()).or_default().push((fi, di));
            }
        }
        t
    }

    /// Declaration sites of an atomic variable/field called `name`.
    pub fn atomic_decls_named<'f>(
        &self,
        files: &'f [FileItems],
        name: &str,
    ) -> Vec<(&'f FileItems, &'f AtomicDecl)> {
        let Some(sites) = self.atomics.get(name) else { return Vec::new() };
        sites
            .iter()
            .filter_map(|&(fi, di)| {
                let file = files.get(fi)?;
                Some((file, file.atomics.get(di)?))
            })
            .collect()
    }

    /// Every distinct atomic variable/field name, in sorted order.
    pub fn atomic_names(&self) -> impl Iterator<Item = &str> {
        self.atomics.keys().map(String::as_str)
    }

    /// Definitions of `Owner::name`.
    pub fn by_qual(&self, qual: &str) -> &[FnId] {
        self.by_qual.get(qual).map_or(&[], Vec::as_slice)
    }

    /// Definitions of a method called `name` under any owner.
    pub fn methods_named(&self, name: &str) -> &[FnId] {
        self.methods.get(name).map_or(&[], Vec::as_slice)
    }

    /// Definitions of a free function called `name`.
    pub fn free_named(&self, name: &str) -> &[FnId] {
        self.free.get(name).map_or(&[], Vec::as_slice)
    }

    /// All indexed functions, in deterministic (qualified-name) order.
    pub fn all(&self) -> impl Iterator<Item = (&str, &[FnId])> {
        self.by_qual.iter().map(|(q, ids)| (q.as_str(), ids.as_slice()))
    }

    /// Renders the table for golden-file tests: one line per
    /// qualified name with its definition site.
    pub fn dump(&self, files: &[FileItems]) -> String {
        let mut out = String::new();
        for (qual, ids) in &self.by_qual {
            for &id in ids {
                let Some((file, it)) = lookup(files, id) else { continue };
                let test = if it.is_test { " [test]" } else { "" };
                out.push_str(&format!("{qual} @ {}:{}{test}\n", file.rel, it.line));
            }
        }
        out
    }

    /// Resolves one call site to candidate definitions, mirroring the
    /// approximations documented in DESIGN.md §9:
    ///
    /// * `Qualifier::name(..)` → `Qualifier::name` defs; `Self` maps
    ///   to the calling function's owner; a qualifier that names no
    ///   type (e.g. a module path tail) falls back to free functions
    ///   called `name`.
    /// * `.name(..)` → every method called `name` (receiver-blind).
    /// * `name(..)` → free functions called `name`.
    pub fn resolve(
        &self,
        call: &crate::parser::CallSite,
        caller_owner: Option<&str>,
    ) -> Vec<FnId> {
        if call.is_macro {
            return Vec::new();
        }
        if call.is_method {
            return self.methods_named(&call.name).to_vec();
        }
        match &call.qualifier {
            Some(q) => {
                let owner = if q == "Self" { caller_owner.unwrap_or(q.as_str()) } else { q };
                let direct = self.by_qual(&format!("{owner}::{}", call.name));
                if !direct.is_empty() {
                    return direct.to_vec();
                }
                // `module::free_fn(..)` — the qualifier is a path
                // segment, not a type.
                self.free_named(&call.name).to_vec()
            }
            None => self.free_named(&call.name).to_vec(),
        }
    }
}

/// Total accessor used by passes: the file and item behind a
/// [`FnId`] (`None` only for an id that never came from `build`).
pub fn lookup(files: &[FileItems], id: FnId) -> Option<(&FileItems, &Item)> {
    let file = files.get(id.0)?;
    let it = file.items.get(id.1)?;
    Some((file, it))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::CallSite;
    use crate::source::SourceFile;

    fn build(srcs: &[(&str, &str)]) -> (Vec<FileItems>, SymbolTable) {
        let files: Vec<FileItems> = srcs
            .iter()
            .map(|(rel, text)| FileItems::parse(&SourceFile::parse(rel, text)))
            .collect();
        let table = SymbolTable::build(&files);
        (files, table)
    }

    fn call(name: &str, qualifier: Option<&str>, is_method: bool) -> CallSite {
        CallSite {
            name: name.into(),
            qualifier: qualifier.map(str::to_string),
            is_method,
            is_macro: false,
            line: 1,
        }
    }

    #[test]
    fn qualified_resolution_prefers_the_owner() {
        let (files, t) = build(&[(
            "crates/x/src/a.rs",
            "struct A; struct B;\nimpl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\nfn go() {}\n",
        )]);
        let a = t.resolve(&call("go", Some("A"), false), None);
        assert_eq!(a.len(), 1);
        assert_eq!(lookup(&files, a[0]).map(|(_, i)| i.qual()), Some("A::go".into()));
    }

    #[test]
    fn method_resolution_is_receiver_blind() {
        let (_, t) = build(&[(
            "crates/x/src/a.rs",
            "impl A { fn go(&self) {} }\nimpl B { fn go(&self) {} }\n",
        )]);
        assert_eq!(t.resolve(&call("go", None, true), None).len(), 2);
    }

    #[test]
    fn self_qualifier_uses_the_caller_owner() {
        let (files, t) = build(&[(
            "crates/x/src/a.rs",
            "impl A { fn helper() {} }\nimpl B { fn helper() {} }\n",
        )]);
        let r = t.resolve(&call("helper", Some("Self"), false), Some("A"));
        assert_eq!(r.len(), 1);
        assert_eq!(lookup(&files, r[0]).map(|(_, i)| i.qual()), Some("A::helper".into()));
    }

    #[test]
    fn module_qualified_calls_fall_back_to_free_fns() {
        let (files, t) =
            build(&[("crates/x/src/a.rs", "fn average() {}\nimpl M { fn other(&self) {} }\n")]);
        let r = t.resolve(&call("average", Some("metrics"), false), None);
        assert_eq!(r.len(), 1);
        assert_eq!(lookup(&files, r[0]).map(|(_, i)| i.qual()), Some("average".into()));
    }

    #[test]
    fn atomic_decls_are_indexed_by_name() {
        let (files, t) = build(&[
            ("crates/x/src/a.rs", "struct S { stop: Arc<AtomicBool> }\n"),
            ("crates/x/src/b.rs", "static STOP: AtomicUsize = AtomicUsize::new(0);\n"),
        ]);
        assert_eq!(t.atomic_decls_named(&files, "stop").len(), 1);
        assert_eq!(t.atomic_decls_named(&files, "STOP")[0].1.ty, "AtomicUsize");
        assert_eq!(t.atomic_names().collect::<Vec<_>>(), ["STOP", "stop"]);
        assert!(t.atomic_decls_named(&files, "missing").is_empty());
    }

    #[test]
    fn dump_is_deterministic_and_marks_tests() {
        let (files, t) = build(&[(
            "crates/x/src/a.rs",
            "fn live() {}\n#[cfg(test)]\nmod tests { fn t() {} }\n",
        )]);
        let d = t.dump(&files);
        assert!(d.contains("live @ crates/x/src/a.rs:1\n"), "{d}");
        assert!(d.contains("t @ crates/x/src/a.rs:3 [test]\n"), "{d}");
    }
}
