//! Integration tests for the interprocedural analysis layer:
//! golden-file tests pinning the symbol table and call graph on a
//! mini workspace, a passing and failing fixture per pass, and the
//! perf budget the CI job enforces.

use std::time::{Duration, Instant};

use nls_lint::parser::FileItems;
use nls_lint::symbols::SymbolTable;
use nls_lint::{analyze_sources, Analysis, Docs, SourceFile};

/// The mini workspace the golden files describe: two files, one impl
/// with methods, a `Self::` call, a cross-file free call, and a
/// test-only caller that must stay out of the graph.
fn mini_workspace() -> Vec<SourceFile> {
    vec![
        SourceFile::parse("crates/mini/src/engine.rs", include_str!("fixtures/mini/engine.rs")),
        SourceFile::parse("crates/mini/src/util.rs", include_str!("fixtures/mini/util.rs")),
    ]
}

#[test]
fn symbol_table_matches_the_golden_file() {
    let sources = mini_workspace();
    let files: Vec<FileItems> = sources.iter().map(FileItems::parse).collect();
    let actual = SymbolTable::build(&files).dump(&files);
    let expected = include_str!("golden/symbols.txt");
    assert_eq!(actual, expected, "\nACTUAL symbol table:\n{actual}");
}

#[test]
fn call_graph_matches_the_golden_file() {
    let sources = mini_workspace();
    let a = Analysis::build(&sources, Docs::default());
    let actual = a.graph.dump(&a.files);
    let expected = include_str!("golden/callgraph.txt");
    assert_eq!(actual, expected, "\nACTUAL call graph:\n{actual}");
}

/// Runs the full analysis (rules + passes) over `files`.
fn analyze(files: &[(&str, &str)], docs: Docs) -> nls_lint::LintReport {
    let parsed: Vec<SourceFile> =
        files.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect();
    analyze_sources(&parsed, docs, None)
}

/// Asserts the failing fixture trips only `pass` with its exit code,
/// and the passing fixture is clean.
fn check_pass(pass: &str, exit: u8, bad: nls_lint::LintReport, good: nls_lint::LintReport) {
    assert!(!bad.violations.is_empty(), "{pass}: bad fixture produced no findings");
    for v in &bad.violations {
        assert_eq!(v.rule, pass, "{pass}: unexpected co-finding {v:?}");
    }
    assert_eq!(bad.exit_code(), exit, "{pass}: wrong exit code");
    assert_eq!(good.violations, vec![], "{pass}: good fixture is not clean");
    assert_eq!(good.exit_code(), 0);
}

#[test]
fn panic_reach_fixtures() {
    let rel = "crates/core/src/engine.rs";
    let bad = analyze(&[(rel, include_str!("fixtures/panic_reach_bad.rs"))], Docs::default());
    assert!(
        bad.violations.iter().any(|v| v.message.contains("->")),
        "finding must carry a witness path: {:?}",
        bad.violations
    );
    let good = analyze(&[(rel, include_str!("fixtures/panic_reach_good.rs"))], Docs::default());
    check_pass("panic-reach", 18, bad, good);
}

#[test]
fn determinism_fixtures() {
    let rel = "crates/core/src/metrics.rs";
    let bad = analyze(&[(rel, include_str!("fixtures/determinism_bad.rs"))], Docs::default());
    let good = analyze(&[(rel, include_str!("fixtures/determinism_good.rs"))], Docs::default());
    check_pass("determinism", 19, bad, good);
}

#[test]
fn unit_safety_fixtures() {
    let rel = "crates/cost/src/fixture.rs";
    let bad = analyze(&[(rel, include_str!("fixtures/unit_safety_bad.rs"))], Docs::default());
    let good = analyze(&[(rel, include_str!("fixtures/unit_safety_good.rs"))], Docs::default());
    check_pass("unit-safety", 20, bad, good);
}

#[test]
fn artifact_fixtures() {
    let orphan = ("crates/bench/src/bin/fig9_orphan.rs", "fn main() {}\n");
    let registry = "crates/bench/src/bin/repro_all.rs";
    let bad = analyze(
        &[orphan, (registry, include_str!("fixtures/artifact_registry_bad.rs"))],
        Docs { design_md: String::new() },
    );
    let good = analyze(
        &[orphan, (registry, include_str!("fixtures/artifact_registry_good.rs"))],
        Docs {
            design_md: "- `fig9_orphan` — Fig 9, orphan sensitivity sweep.\n".to_string()
        },
    );
    check_pass("artifact-conformance", 21, bad, good);
}

#[test]
fn atomics_discipline_fixtures() {
    let rel = "crates/core/src/budget.rs";
    let bad =
        analyze(&[(rel, include_str!("fixtures/atomics_discipline_bad.rs"))], Docs::default());
    // Relaxed flag load + mixed orderings + relaxed RMW gate.
    assert_eq!(bad.violations.len(), 3, "{:?}", bad.violations);
    let good =
        analyze(&[(rel, include_str!("fixtures/atomics_discipline_good.rs"))], Docs::default());
    check_pass("atomics-discipline", 23, bad, good);
}

#[test]
fn signal_safety_fixtures() {
    let rel = "crates/core/src/supervisor.rs";
    let bad = analyze(&[(rel, include_str!("fixtures/signal_safety_bad.rs"))], Docs::default());
    assert!(
        bad.violations.iter().any(|v| v.message.contains("on_signal -> note_signal")),
        "finding must carry the handler path: {:?}",
        bad.violations
    );
    let good =
        analyze(&[(rel, include_str!("fixtures/signal_safety_good.rs"))], Docs::default());
    check_pass("signal-safety", 24, bad, good);
}

#[test]
fn fs_durability_fixtures() {
    let rel = "crates/core/src/checkpoint.rs";
    let bad = analyze(&[(rel, include_str!("fixtures/fs_durability_bad.rs"))], Docs::default());
    // The in-place write and the unsynced rename are separate findings.
    assert!(
        bad.violations.iter().any(|v| v.message.contains("write_atomic"))
            && bad.violations.iter().any(|v| v.message.contains("parent-directory fsync")),
        "{:?}",
        bad.violations
    );
    let good =
        analyze(&[(rel, include_str!("fixtures/fs_durability_good.rs"))], Docs::default());
    check_pass("fs-durability", 25, bad, good);
}

#[test]
fn hot_path_alloc_fixtures() {
    let rel = "crates/core/src/engine.rs";
    let bad =
        analyze(&[(rel, include_str!("fixtures/hot_path_alloc_bad.rs"))], Docs::default());
    assert!(
        bad.violations.iter().any(|v| v.message.contains("Engine::step -> Engine::note")),
        "finding must carry the hot-path witness: {:?}",
        bad.violations
    );
    let good =
        analyze(&[(rel, include_str!("fixtures/hot_path_alloc_good.rs"))], Docs::default());
    check_pass("hot-path-alloc", 26, bad, good);
}

#[test]
fn lock_order_fixtures() {
    let rel = "crates/core/src/state.rs";
    let bad = analyze(&[(rel, include_str!("fixtures/lock_order_bad.rs"))], Docs::default());
    assert!(
        bad.violations.iter().any(|v| v.message.contains("held across"))
            && bad.violations.iter().any(|v| v.message.contains("lock-order cycle")),
        "{:?}",
        bad.violations
    );
    let good = analyze(&[(rel, include_str!("fixtures/lock_order_good.rs"))], Docs::default());
    check_pass("lock-order", 27, bad, good);
}

#[test]
fn resource_leak_fixtures() {
    let rel = "crates/core/src/worker.rs";
    let bad = analyze(&[(rel, include_str!("fixtures/resource_leak_bad.rs"))], Docs::default());
    // The leaked lease and the stranded tmp are separate findings.
    assert!(
        bad.violations.iter().any(|v| v.message.contains("lease"))
            && bad.violations.iter().any(|v| v.message.contains("tmp")),
        "{:?}",
        bad.violations
    );
    let good =
        analyze(&[(rel, include_str!("fixtures/resource_leak_good.rs"))], Docs::default());
    check_pass("resource-leak", 28, bad, good);
}

#[test]
fn stale_waiver_fixtures() {
    let rel = "crates/core/src/metrics.rs";
    let bad = analyze(&[(rel, include_str!("fixtures/stale_waiver_bad.rs"))], Docs::default());
    let good =
        analyze(&[(rel, include_str!("fixtures/stale_waiver_good.rs"))], Docs::default());
    check_pass("stale-waiver", 29, bad, good);
}

#[test]
fn let_else_and_labeled_loops_analyze_clean() {
    // Parser regression: let-else and labeled loops must survive the
    // full twelve-pass run without findings (the labeled loop is a
    // polled supervision root; the let-else else-block is a lease
    // release path).
    let report = analyze(
        &[("crates/core/src/sweep.rs", include_str!("fixtures/parser_edge_good.rs"))],
        Docs::default(),
    );
    assert_eq!(report.violations, vec![], "parser-edge fixture is not clean");
    assert_eq!(report.exit_code(), 0);
}

#[test]
fn lockleak_witness_paths_match_the_golden_file() {
    // A two-file mini workspace exercising the CFG-backed passes: a
    // guard held across an fsync reached through a helper
    // (lock-order, with the call chain in the message) and a lease
    // leaked on a `?` path (resource-leak, with the escaping blocks
    // as witness steps). The golden file pins both findings AND
    // their full witness paths.
    let report = analyze(
        &[
            ("crates/core/src/state.rs", include_str!("fixtures/lockleak/state.rs")),
            ("crates/core/src/worker.rs", include_str!("fixtures/lockleak/worker.rs")),
        ],
        Docs::default(),
    );
    let actual = nls_lint::render(&report, nls_lint::Format::Human);
    let expected = include_str!("golden/lockleak.txt");
    assert_eq!(actual, expected, "\nACTUAL findings with witness paths:\n{actual}");
    assert_eq!(report.exit_code(), 27, "lock-order outranks resource-leak");
}

#[test]
fn heartbeat_witness_path_matches_the_golden_file() {
    // A two-file mini workspace around the ledger's Heartbeat: the
    // beat loop polls its stop flag with a relaxed load
    // (atomics-discipline, with the decl site cross-referenced) and
    // the SIGINT handler reaches the heartbeat's format machinery
    // (signal-safety, with a cross-file witness path).
    let report = analyze(
        &[
            ("crates/core/src/ledger.rs", include_str!("fixtures/heartbeat/ledger.rs")),
            ("crates/core/src/supervisor.rs", include_str!("fixtures/heartbeat/supervisor.rs")),
        ],
        Docs::default(),
    );
    let actual = nls_lint::render(&report, nls_lint::Format::Human);
    let expected = include_str!("golden/heartbeat.txt");
    assert_eq!(actual, expected, "\nACTUAL report:\n{actual}");
    assert!(
        report.violations.iter().any(|v| v.message.contains("on_signal -> Heartbeat::mark")),
        "the witness path must walk the handler into the ledger Heartbeat: {:?}",
        report.violations
    );
    // Atomics findings sort first, so the lowest violated code wins.
    assert_eq!(report.exit_code(), 23);
}

#[test]
fn full_workspace_analysis_fits_the_perf_budget() {
    // CARGO_MANIFEST_DIR is crates/lint; the workspace root is two up.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../..");
    let start = Instant::now();
    let report = nls_lint::lint_workspace(&root, None).expect("workspace analysis failed");
    let elapsed = start.elapsed();
    assert!(report.files > 0, "workspace walk found no files");
    assert!(
        elapsed < Duration::from_secs(10),
        "full-workspace analysis took {elapsed:?}, budget is 10s"
    );
}
