//! End-to-end `--fix` idempotency: running the binary twice over the
//! same workspace must reach a fixed point — the first run edits, the
//! second applies zero edits and leaves every byte alone.

use std::fs;
use std::path::PathBuf;
use std::process::Command;

/// The binary under test: the offline harness exports `NLS_LINT_BIN`;
/// cargo exports `CARGO_BIN_EXE_nls-lint`.
fn lint_bin() -> PathBuf {
    let bin = option_env!("NLS_LINT_BIN").or(option_env!("CARGO_BIN_EXE_nls-lint"));
    PathBuf::from(bin.expect(
        "set NLS_LINT_BIN (offline harness) or run under cargo (CARGO_BIN_EXE_nls-lint)",
    ))
}

/// Two machine-fixable defects: a reasonless waiver (rewritten into
/// the canonical TODO form) and a cancel flag loaded with
/// `Ordering::Relaxed` (strengthened to `SeqCst` by the
/// atomics-discipline pass repair).
const FIXABLE: &str = "\
pub struct T { stop: Arc<AtomicBool> }
impl T {
    pub fn cancel(&self) { self.stop.store(true, Ordering::SeqCst); }
    pub fn is_on(&self) -> bool { self.stop.load(Ordering::Relaxed) }
    pub fn first(xs: &[u64]) -> u64 {
        // nls-lint: allow(no-panic)
        xs.first().copied().unwrap()
    }
}
";

#[test]
fn fix_applies_once_then_reaches_a_fixed_point() {
    let root = std::env::temp_dir().join(format!("nls-lint-fix-{}", std::process::id()));
    let src_dir = root.join("crates/core/src");
    fs::create_dir_all(&src_dir).expect("create temp workspace");
    let file = src_dir.join("budget.rs");
    fs::write(&file, FIXABLE).expect("write fixture");

    let run = |label: &str| -> (String, String) {
        let out = Command::new(lint_bin())
            .arg("--root")
            .arg(&root)
            .arg("--fix")
            .output()
            .expect(label);
        let stderr = String::from_utf8_lossy(&out.stderr).into_owned();
        let text = fs::read_to_string(&file).expect("read back");
        (stderr, text)
    };

    let (err1, after1) = run("first --fix run");
    assert_ne!(after1, FIXABLE, "first run must edit the file; stderr:\n{err1}");
    assert!(!after1.contains("Relaxed"), "pass repair must land:\n{after1}");
    assert!(after1.contains("TODO"), "waiver rewrite must land:\n{after1}");

    let (err2, after2) = run("second --fix run");
    assert_eq!(after2, after1, "second run must be byte-identical; stderr:\n{err2}");
    assert!(err2.contains("--fix patched 0 file(s)"), "{err2}");
    assert!(!err2.contains("applied pass repairs"), "{err2}");

    let _ = fs::remove_dir_all(&root);
}
