//! Per-rule fixture tests for `nls-lint`.
//!
//! Every rule has a failing and a passing fixture under
//! `tests/fixtures/` — a directory the workspace walker skips, so the
//! intentional violations never fail the real lint run. Fixtures are
//! lexed (not compiled) under the workspace-relative paths the rules
//! are scoped to, which also pins down the path scoping itself
//! (e.g. `cast-truncate` fires in `crates/core` but not
//! `crates/bench`).

use nls_lint::{lint_sources, render, Format, LintReport, SourceFile};

/// Lints a set of (workspace-relative path, source text) pairs.
fn lint(files: &[(&str, &str)]) -> LintReport {
    let parsed: Vec<SourceFile> =
        files.iter().map(|(rel, text)| SourceFile::parse(rel, text)).collect();
    lint_sources(&parsed)
}

/// Asserts the failing fixture trips `rule` (and nothing else) with
/// the rule's exit code, and that the passing fixture is clean.
fn check_rule(rule: &str, exit: u8, rel: &str, bad: &str, good: &str) {
    let report = lint(&[(rel, bad)]);
    assert!(!report.violations.is_empty(), "{rule}: bad fixture produced no findings");
    for v in &report.violations {
        assert_eq!(v.rule, rule, "{rule}: unexpected co-finding {v:?}");
        assert!(v.line > 0, "{rule}: finding carries no line: {v:?}");
    }
    assert_eq!(report.exit_code(), exit, "{rule}: wrong exit code");
    let clean = lint(&[(rel, good)]);
    assert_eq!(clean.violations, vec![], "{rule}: good fixture is not clean");
    assert_eq!(clean.exit_code(), 0);
}

#[test]
fn no_panic() {
    check_rule(
        "no-panic",
        10,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/no_panic_bad.rs"),
        include_str!("fixtures/no_panic_good.rs"),
    );
    // unwrap(), expect() and panic! are three separate findings.
    let report =
        lint(&[("crates/core/src/fixture.rs", include_str!("fixtures/no_panic_bad.rs"))]);
    assert_eq!(report.violations.len(), 3, "{:?}", report.violations);
}

#[test]
fn slice_index() {
    check_rule(
        "slice-index",
        11,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/slice_index_bad.rs"),
        include_str!("fixtures/slice_index_good.rs"),
    );
}

#[test]
fn cast_truncate() {
    check_rule(
        "cast-truncate",
        12,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/cast_truncate_bad.rs"),
        include_str!("fixtures/cast_truncate_good.rs"),
    );
}

#[test]
fn cast_truncate_is_scoped_to_model_crates() {
    let bad = include_str!("fixtures/cast_truncate_bad.rs");
    for rel in ["crates/cost/src/f.rs", "crates/predictors/src/f.rs"] {
        assert!(!lint(&[(rel, bad)]).violations.is_empty(), "{rel} must be in scope");
    }
    // Presentation crates may narrow freely (their numbers are not
    // the published tables).
    assert_eq!(lint(&[("crates/bench/src/f.rs", bad)]).violations, vec![]);
}

#[test]
fn fs_trace_read() {
    check_rule(
        "fs-trace-read",
        13,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/fs_trace_read_bad.rs"),
        include_str!("fixtures/fs_trace_read_good.rs"),
    );
}

#[test]
fn fs_trace_read_allows_the_trace_crate() {
    let bad = include_str!("fixtures/fs_trace_read_bad.rs");
    assert_eq!(lint(&[("crates/trace/src/file.rs", bad)]).violations, vec![]);
}

#[test]
fn hash_order() {
    check_rule(
        "hash-order",
        14,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/hash_order_bad.rs"),
        include_str!("fixtures/hash_order_good.rs"),
    );
}

#[test]
fn unchecked_capacity() {
    check_rule(
        "unchecked-capacity",
        15,
        "crates/core/src/fixture.rs",
        include_str!("fixtures/unchecked_capacity_bad.rs"),
        include_str!("fixtures/unchecked_capacity_good.rs"),
    );
}

#[test]
fn error_exit_map() {
    let cli = ("crates/cli/src/main.rs", include_str!("fixtures/error_exit_map_cli.rs"));
    let bad = lint(&[
        ("crates/core/src/error.rs", include_str!("fixtures/error_exit_map_bad.rs")),
        cli,
    ]);
    assert!(
        bad.violations
            .iter()
            .any(|v| v.message.contains("Trace") && v.message.contains("exit_code")),
        "missing-arm finding not reported: {:?}",
        bad.violations
    );
    assert!(
        bad.violations.iter().any(|v| v.message.contains("wildcard")),
        "wildcard finding not reported: {:?}",
        bad.violations
    );
    assert!(bad.violations.iter().all(|v| v.rule == "error-exit-map"));
    assert_eq!(bad.exit_code(), 16);

    let good = lint(&[
        ("crates/core/src/error.rs", include_str!("fixtures/error_exit_map_good.rs")),
        cli,
    ]);
    assert_eq!(good.violations, vec![], "good taxonomy must lint clean");
}

#[test]
fn error_exit_map_requires_cli_mention() {
    // A complete taxonomy that the CLI never acknowledges still fails.
    let report = lint(&[
        ("crates/core/src/error.rs", include_str!("fixtures/error_exit_map_good.rs")),
        ("crates/cli/src/main.rs", "fn main() {}"),
    ]);
    assert!(
        report.violations.iter().any(|v| v.message.contains("never handled")),
        "{:?}",
        report.violations
    );
}

#[test]
fn suppression_with_reason_is_honored() {
    let report =
        lint(&[("crates/core/src/fixture.rs", include_str!("fixtures/suppression_ok.rs"))]);
    assert_eq!(report.violations, vec![], "justified waiver must silence the finding");
}

#[test]
fn suppression_without_reason_reports_both() {
    let report = lint(&[(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/suppression_no_reason.rs"),
    )]);
    let rules: Vec<&str> = report.violations.iter().map(|v| v.rule).collect();
    assert!(rules.contains(&"suppression"), "{rules:?}");
    assert!(rules.contains(&"no-panic"), "the unwaived finding must survive: {rules:?}");
    // no-panic (10) outranks the suppression pseudo-rule (17).
    assert_eq!(report.exit_code(), 10);
}

#[test]
fn malformed_suppression_alone_exits_17() {
    let report = lint(&[(
        "crates/core/src/fixture.rs",
        include_str!("fixtures/suppression_malformed_only.rs"),
    )]);
    assert_eq!(report.violations.len(), 1, "{:?}", report.violations);
    assert_eq!(report.exit_code(), 17);
}

#[test]
fn json_schema_is_stable() {
    let report =
        lint(&[("crates/core/src/fixture.rs", include_str!("fixtures/slice_index_bad.rs"))]);
    let json = render(&report, Format::Json);
    for key in [
        "\"version\": 1",
        "\"violations\": [",
        "\"file\": \"crates/core/src/fixture.rs\"",
        "\"line\": ",
        "\"rule\": \"slice-index\"",
        "\"message\": ",
        "\"summary\": {",
        "\"files\": 1",
        "\"exit_code\": 11",
    ] {
        assert!(json.contains(key), "JSON missing {key}:\n{json}");
    }
}

#[test]
fn json_clean_report_shape() {
    let report =
        lint(&[("crates/core/src/fixture.rs", include_str!("fixtures/no_panic_good.rs"))]);
    let json = render(&report, Format::Json);
    assert!(json.contains("\"violations\": []"), "{json}");
    assert!(json.contains("\"exit_code\": 0"), "{json}");
}

#[test]
fn human_format_is_grep_friendly() {
    let report =
        lint(&[("crates/core/src/fixture.rs", include_str!("fixtures/slice_index_bad.rs"))]);
    let text = render(&report, Format::Human);
    assert!(
        text.lines().next().is_some_and(|l| l.starts_with("crates/core/src/fixture.rs:")),
        "{text}"
    );
    assert!(text.contains("violation(s)"), "{text}");
}
