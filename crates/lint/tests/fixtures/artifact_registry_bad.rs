//! Failing fixture registry: `fig9_orphan` is not in the list.

fn main() {
    let bins = ["fig3_miss_rates"];
    for b in bins {
        println!("{b}");
    }
}
