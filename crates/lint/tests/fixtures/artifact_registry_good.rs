//! Passing fixture registry: every bench binary is listed.

fn main() {
    let bins = ["fig3_miss_rates", "fig9_orphan"];
    for b in bins {
        println!("{b}");
    }
}
