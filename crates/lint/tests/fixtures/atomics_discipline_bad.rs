//! Failing fixture for `atomics-discipline`: the stop flag is a
//! cross-thread cancel flag (one side stores, the other polls)
//! loaded with `Ordering::Relaxed` — which also gives it a mixed
//! ordering profile — and a relaxed read-modify-write counter gates
//! the flush it is supposed to order.

pub struct Token {
    stop: AtomicBool,
}

impl Token {
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }
}

pub fn tally(unsaved: &AtomicUsize) {
    if unsaved.fetch_add(1, Ordering::Relaxed) + 1 >= 8 {
        flush();
    }
}

fn flush() {}
