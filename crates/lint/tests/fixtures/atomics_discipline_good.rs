//! Passing fixture: one `SeqCst` protocol for the cancel flag, and
//! the relaxed counter is a pure ticket dispenser — its result is
//! let-bound, never a gate.

pub struct Token {
    stop: AtomicBool,
}

impl Token {
    pub fn cancel(&self) {
        self.stop.store(true, Ordering::SeqCst);
    }

    pub fn is_cancelled(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }
}

pub fn claim(next_index: &AtomicUsize) -> usize {
    let ticket = next_index.fetch_add(1, Ordering::Relaxed);
    ticket
}
