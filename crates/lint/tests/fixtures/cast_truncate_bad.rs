//! Failing fixture for `cast-truncate` (only when lexed under a
//! model crate path): a narrowing `as` cast.
pub fn narrow(x: u64) -> u32 {
    x as u32
}
