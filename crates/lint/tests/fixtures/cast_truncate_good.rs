//! Passing fixture for `cast-truncate`: saturating try_from and a
//! widening cast (which never truncates).
pub fn narrow(x: u64) -> u32 {
    u32::try_from(x).unwrap_or(u32::MAX)
}
pub fn widen(x: u32) -> u64 {
    x as u64
}
