//! Failing fixture: a metrics function reads the wall clock.

use std::time::Instant;

pub fn sample_latency_ns() -> u128 {
    let start = Instant::now();
    start.elapsed().as_nanos()
}
