//! Passing fixture: metrics accumulate values fed in by the caller;
//! no clock, RNG, env, or thread identity anywhere.

pub fn sample_latency_ns(acc: u128, delta: u128) -> u128 {
    acc + delta
}
