//! Failing fixture for `error-exit-map` (lexed as
//! `crates/core/src/error.rs`): `Trace` has no explicit `exit_code`
//! arm and the wildcard would silently absorb future variants.
pub enum NlsError {
    Usage(String),
    Trace(String),
}

impl NlsError {
    pub fn exit_code(&self) -> u8 {
        match self {
            NlsError::Usage(_) => 2,
            _ => 1,
        }
    }

    pub fn class(&self) -> &'static str {
        match self {
            NlsError::Usage(_) => "usage",
            NlsError::Trace(_) => "trace",
        }
    }
}
