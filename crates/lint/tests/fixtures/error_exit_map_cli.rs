//! CLI-side companion for the `error-exit-map` fixtures (lexed as
//! `crates/cli/src/main.rs`): mentions every variant by name.
pub fn describe(e: &NlsError) -> &'static str {
    match e {
        NlsError::Usage(_) => "run help",
        NlsError::Trace(_) => "regenerate the trace",
    }
}
