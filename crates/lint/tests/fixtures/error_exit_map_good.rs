//! Passing fixture for `error-exit-map`: every variant has explicit
//! `exit_code` and `class` arms, no wildcard absorbs new ones, and
//! the module-doc exit-code table matches the arms:
//!
//! | class | variant | exit code |
//! |---|---|---|
//! | bad invocation | [`NlsError::Usage`] | 2 |
//! | corrupt trace | [`NlsError::Trace`] | 3 |
pub enum NlsError {
    Usage(String),
    Trace(String),
}

impl NlsError {
    pub fn exit_code(&self) -> u8 {
        match self {
            NlsError::Usage(_) => 2,
            NlsError::Trace(_) => 3,
        }
    }

    pub fn class(&self) -> &'static str {
        match self {
            NlsError::Usage(_) => "usage",
            NlsError::Trace(_) => "trace",
        }
    }
}
