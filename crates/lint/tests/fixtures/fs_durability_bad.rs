//! Failing fixture for `fs-durability` (the rel path places every
//! function in durable scope): an in-place overwrite of the durable
//! path and a rename that never fsyncs the parent directory.

pub fn save(path: &Path, text: &str) {
    let _ = fs::write(path, text);
}

pub fn publish(staged: &Path, path: &Path) {
    let _ = fs::rename(staged, path);
}
