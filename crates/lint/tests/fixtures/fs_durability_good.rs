//! Passing fixture: the tmp+fsync+rename discipline — parent fsync
//! included, and the staged tmp removed on the failure path (so the
//! resource-leak pass is satisfied too: no `?` strands the tmp).

pub fn save(path: &Path, text: &str) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    match stage(&tmp, text) {
        Ok(()) => {
            fs::rename(&tmp, path)?;
            fsync_parent_dir(path)
        }
        Err(e) => {
            let _ = fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn stage(tmp: &Path, text: &str) -> io::Result<()> {
    let file = File::create(tmp)?;
    file.write_all(text.as_bytes())?;
    file.sync_all()
}

fn tmp_sibling(path: &Path) -> PathBuf {
    path.with_extension("csv.tmp")
}

fn fsync_parent_dir(_path: &Path) -> io::Result<()> {
    Ok(())
}
