//! Passing fixture: the tmp+fsync+rename discipline, parent fsync
//! included.

pub fn save(path: &Path, text: &str) -> io::Result<()> {
    let tmp = tmp_sibling(path);
    let file = File::create(&tmp)?;
    file.write_all(text.as_bytes())?;
    file.sync_all()?;
    fs::rename(&tmp, path)?;
    fsync_parent_dir(path)
}

fn tmp_sibling(path: &Path) -> PathBuf {
    path.with_extension("csv.tmp")
}

fn fsync_parent_dir(_path: &Path) -> io::Result<()> {
    Ok(())
}
