//! Failing fixture for `fs-trace-read`: direct file reads outside
//! `crates/trace`, with no annotation saying why.
use std::fs;
use std::fs::File;

pub fn slurp(path: &str) -> std::io::Result<String> {
    fs::read_to_string(path)
}
pub fn open(path: &str) -> std::io::Result<File> {
    File::open(path)
}
