//! Passing fixture for `fs-trace-read`: a read that is justified by
//! an annotation carrying its safety argument.
use std::fs;

pub fn checkpoint(path: &str) -> std::io::Result<String> {
    // nls-lint: allow(fs-trace-read): checkpoint JSON, not trace bytes
    fs::read_to_string(path)
}
