//! Ledger half of the heartbeat mini workspace: the beat thread's
//! stop flag is polled with a relaxed load, and the heartbeat's
//! `mark` embeds format machinery the signal handler will reach.

pub struct Heartbeat {
    stop: AtomicBool,
}

impl Heartbeat {
    pub fn run(&self) {
        while !self.is_cancelled() {
            self.beat();
        }
    }

    fn is_cancelled(&self) -> bool {
        self.stop.load(Ordering::Relaxed)
    }

    fn beat(&self) {
        touch_lease();
    }

    pub fn mark(&self) {
        let _note = format!("worker interrupted");
    }
}

pub fn stop_heartbeat(hb: &Heartbeat) {
    hb.stop.store(true, Ordering::SeqCst);
}

fn touch_lease() {}
