//! Handler half: SIGINT marks the heartbeat as interrupted — which
//! drags the ledger's format machinery into the signal subtree.

pub fn install_signal_token() -> CancelToken {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
        Heartbeat::mark(&HEARTBEAT);
    }
    unsafe { signal(SIGINT, on_signal as usize) };
    CancelToken::new()
}
