//! Failing fixture for `hot-path-alloc`: the per-record `step` path
//! reaches an unresolved `push` two calls deep — a growable event
//! log on the hot path.

pub struct Engine {
    cursor: usize,
}

impl Engine {
    pub fn step(&mut self, pc: u64) {
        self.cursor = self.cursor.wrapping_add(1);
        self.note(pc);
    }

    fn note(&mut self, pc: u64) {
        self.events.push(pc);
    }
}
