//! Passing fixture: flat scalar state — the whole `step` subtree
//! mutates in place and never touches the allocator.

pub struct Engine {
    cursor: usize,
    total: u64,
}

impl Engine {
    pub fn step(&mut self, pc: u64) {
        self.cursor = self.cursor.wrapping_add(1);
        self.note(pc);
    }

    fn note(&mut self, pc: u64) {
        self.total = self.total.wrapping_add(pc);
    }
}
