//! Failing fixture for the lock-order pass: a guard held across
//! fsync, and opposite acquisition orders across two functions.

pub fn flush(s: &Store, f: &File) -> Result<(), E> {
    let guard = s.slots.lock();
    guard.merge();
    f.sync_all()?;
    Ok(())
}

pub fn ab(s: &Store) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    a.join(b);
}

pub fn ba(s: &Store) {
    let b = s.beta.lock();
    let a = s.alpha.lock();
    b.join(a);
}
