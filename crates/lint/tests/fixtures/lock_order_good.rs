//! Passing fixture for the lock-order pass: the guard dies in its
//! own scope before the fsync, and both functions acquire in the
//! same order.

pub fn flush(s: &Store, f: &File) -> Result<(), E> {
    let merged = {
        let guard = s.slots.lock();
        guard.merge()
    };
    f.sync_all()?;
    keep(merged);
    Ok(())
}

pub fn ab(s: &Store) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    a.join(b);
}

pub fn ab2(s: &Store) {
    let a = s.alpha.lock();
    let b = s.beta.lock();
    b.join(a);
}

fn keep(_m: Merged) {}
