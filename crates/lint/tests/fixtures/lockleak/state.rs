//! Lockleak mini workspace, file 1: a table guard held across an
//! fsync that is only reached through a helper — the witness path
//! must name the chain.

pub fn flush(s: &Store, f: &File) -> Result<(), E> {
    let guard = s.slots.lock();
    guard.merge();
    persist_table(f)?;
    Ok(())
}

fn persist_table(f: &File) -> Result<(), E> {
    f.sync_all()?;
    Ok(())
}
