//! Lockleak mini workspace, file 2: a claimed lease that escapes on
//! the lookup `?` — the witness path must walk the escaping blocks.

pub fn drain(file: &LedgerFile, key: &str) -> Result<(), E> {
    match file.claim(key)? {
        Outcome::Claimed(k) => {
            let spec = lookup(&k)?;
            file.complete(&k, spec)?;
        }
        Outcome::Busy => {}
    }
    Ok(())
}
