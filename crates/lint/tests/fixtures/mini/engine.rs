//! Mini-workspace fixture for the golden-file tests: one impl with
//! methods, a free function, a cross-file call, and test-only code.

pub struct Engine;

impl Engine {
    pub fn step(&mut self) {
        self.advance();
        tick();
    }

    fn advance(&mut self) {
        Self::check();
    }

    fn check() {}
}

pub fn tick() {
    crate::util::bump();
}

#[cfg(test)]
mod tests {
    #[test]
    fn covers() {
        super::tick();
    }
}
