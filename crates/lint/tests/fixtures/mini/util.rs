//! Leaf module of the mini workspace.

pub fn bump() {
    leaf();
}

fn leaf() {}
