//! Failing fixture for `no-panic`: implicit-panic calls in non-test
//! code. Never compiled — lexed by the fixture tests only.
pub fn first(v: Option<u32>) -> u32 {
    v.unwrap()
}
pub fn second(v: Option<u32>) -> u32 {
    v.expect("present")
}
pub fn third() {
    panic!("boom");
}
