//! Passing fixture for `no-panic`: total alternatives.
pub fn first(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}
pub fn second(v: Option<u32>) -> u32 {
    v.unwrap_or_default()
}
pub fn third(v: Option<u32>) -> Result<u32, String> {
    v.ok_or_else(|| "missing".to_string())
}
