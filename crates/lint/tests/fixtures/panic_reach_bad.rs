//! Failing fixture: the engine entry point reaches an assert two
//! calls down the chain.

pub fn run_sim(records: u64) {
    let mut r = 0;
    // nls-lint: allow(cancellation-reach): fixture loop, bounded by its argument
    while r < records {
        consume(r);
        r += 1;
    }
}

fn consume(r: u64) {
    validate(r);
}

fn validate(r: u64) {
    assert!(r < 1_000_000, "record id out of range");
}
