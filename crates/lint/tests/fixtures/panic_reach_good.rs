//! Passing fixture: the same call chain, with the assert waived for
//! a documented reason.

pub fn run_sim(records: u64) {
    let mut r = 0;
    // nls-lint: allow(cancellation-reach): fixture loop, bounded by its argument
    while r < records {
        consume(r);
        r += 1;
    }
}

fn consume(r: u64) {
    validate(r);
}

fn validate(r: u64) {
    // nls-lint: allow(panic-reach): fixture waiver with a documented reason
    assert!(r < 1_000_000, "record id out of range");
}
