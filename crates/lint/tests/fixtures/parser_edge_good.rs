//! Parser regression fixture: let-else bindings and labeled loops
//! must parse, lower through the CFG, and produce no findings. The
//! labeled outer loop is a supervision root (this fixture poses as
//! `sweep.rs`), so `cancellation-reach` walks its header; the
//! let-else else-block is a release path `resource-leak` must see.

pub fn run_batches(budget: &Budget, batches: &[Batch]) -> Result<(), E> {
    'outer: for b in batches {
        budget.check_now()?;
        for item in b.items() {
            if item.is_poison() {
                break 'outer;
            }
            consume(item);
        }
    }
    Ok(())
}

pub fn run_pick(file: &LedgerFile, key: &str) -> Result<(), E> {
    match file.claim(key)? {
        Outcome::Claimed(k) => {
            let Some(spec) = lookup(&k) else {
                file.release(&k)?;
                return Ok(());
            };
            file.complete(&k, spec)?;
        }
        Outcome::Busy => {}
    }
    Ok(())
}

fn consume(_i: Item) {}
