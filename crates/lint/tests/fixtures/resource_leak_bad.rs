//! Failing fixture for the resource-leak pass: a `?` between claim
//! and publish leaks the lease, and a validation `?` between the
//! staged write and its rename strands the tmp file.

pub fn drain(file: &LedgerFile, key: &str) -> Result<(), E> {
    match file.claim(key)? {
        Outcome::Claimed(k) => {
            let spec = lookup(&k)?;
            file.complete(&k, spec)?;
        }
        Outcome::Busy => {}
    }
    Ok(())
}

pub fn publish_blob(path: &Path, text: &str) -> Result<(), E> {
    let tmp = sibling(path);
    fs::write(&tmp, text)?;
    validate(text)?;
    fs::rename(&tmp, path)?;
    Ok(())
}
