//! Passing fixture for the resource-leak pass — and the let-else
//! regression fixture: the lease is handed back on the let-else
//! path, the Err arm, and the happy path alike, and the staged tmp
//! renames with nothing fallible in between.

pub fn drain(file: &LedgerFile, key: &str) -> Result<(), E> {
    match file.claim(key)? {
        Outcome::Claimed(k) => {
            let Some(spec) = lookup(&k) else {
                file.release(&k)?;
                return Ok(());
            };
            match simulate(&spec) {
                Ok(r) => file.complete(&k, r)?,
                Err(e) => file.record_failure(&k, e)?,
            }
        }
        Outcome::Busy => {}
    }
    Ok(())
}

pub fn publish_blob(path: &Path, text: &str) -> Result<(), E> {
    let tmp = sibling(path);
    fs::write(&tmp, text)?;
    fs::rename(&tmp, path)?;
    Ok(())
}
