//! Failing fixture for `signal-safety`: the handler records the
//! signal through a helper that allocates (format machinery) — two
//! calls deep, so the finding carries a witness path.

pub fn install_signal_token() -> CancelToken {
    extern "C" fn on_signal(_sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
        note_signal();
    }
    unsafe { signal(SIGINT, on_signal as usize) };
    CancelToken::new()
}

fn note_signal() {
    let _line = format!("caught a signal");
}
