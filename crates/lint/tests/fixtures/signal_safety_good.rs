//! Passing fixture: a store-only handler that re-arms the signal —
//! everything it touches is an atomic access or an allowlisted
//! async-signal-safe syscall.

pub fn install_signal_token() -> CancelToken {
    extern "C" fn on_signal(sig: i32) {
        SIGNALLED.store(true, Ordering::SeqCst);
        unsafe { signal(sig, on_signal as usize) };
    }
    unsafe { signal(SIGINT, on_signal as usize) };
    CancelToken::new()
}
