//! Failing fixture for `slice-index`: an index with no visible bound.
pub fn pick(v: &[u32], i: usize) -> u32 {
    v[i]
}
