//! Passing fixture for `slice-index`: literal, masked and modular
//! indexes, plus the `.get()` alternative.
pub fn literal(v: &[u32]) -> u32 {
    v[0]
}
pub fn masked(v: &[u32; 8], i: usize) -> u32 {
    v[i & 7]
}
pub fn modular(v: &[u32], i: usize) -> u32 {
    v[i % v.len()]
}
pub fn total(v: &[u32], i: usize) -> Option<u32> {
    v.get(i).copied()
}
