//! Failing fixture for the stale-waiver pass: the waived line is
//! clean, so the waiver suppresses nothing and should be deleted.

pub fn first_or_zero(xs: &[u64]) -> u64 {
    // nls-lint: allow(no-panic): historical — the unwrap this waived is long gone
    xs.first().copied().unwrap_or(0)
}
