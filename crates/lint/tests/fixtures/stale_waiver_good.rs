//! Passing fixture for the stale-waiver pass: the waiver still
//! suppresses a live `no-panic` finding, so it earns its keep.

pub fn first(xs: &[u64]) -> u64 {
    // nls-lint: allow(no-panic): the caller guarantees xs is non-empty
    xs.first().copied().unwrap()
}
