//! Fixture: a malformed annotation with nothing to waive — the only
//! finding is the `suppression` pseudo-rule itself (exit 17).
// nls-lint: allow()
pub fn fine() {}
