//! Fixture: a reasonless suppression is itself an error and does not
//! waive the finding below it.
pub fn first(v: Option<u32>) -> u32 {
    // nls-lint: allow(no-panic)
    v.unwrap()
}
