//! Fixture: a well-formed suppression (rule + mandatory reason)
//! waives the finding on its own and the following line.
pub fn first(v: Option<u32>) -> u32 {
    // nls-lint: allow(no-panic): fixture demonstrating a justified waiver
    v.unwrap()
}
