//! Failing fixture for `unchecked-capacity`: the argument flows in
//! unbounded (the corrupt-header allocation bug class).
pub fn alloc(n: usize) -> Vec<u32> {
    Vec::with_capacity(n)
}
