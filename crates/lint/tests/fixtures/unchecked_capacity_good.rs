//! Passing fixture for `unchecked-capacity`: literal, `len()`-sized
//! and visibly capped allocations.
pub fn fixed() -> Vec<u32> {
    Vec::with_capacity(64)
}
pub fn sized(v: &[u32]) -> Vec<u32> {
    Vec::with_capacity(v.len())
}
pub fn capped(n: usize) -> Vec<u32> {
    Vec::with_capacity(n.min(1024))
}
