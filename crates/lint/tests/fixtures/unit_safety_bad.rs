//! Failing fixture: cost-model arithmetic adds an RBE count to a
//! nanosecond value with no conversion.

pub fn total(cost_rbe: u64, lat_ns: u64) -> u64 {
    cost_rbe + lat_ns
}
