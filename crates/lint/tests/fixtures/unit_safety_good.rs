//! Passing fixture: the RBE operand goes through an explicit
//! `*_to_*` conversion before it meets the nanosecond value.

pub fn total_ns(cost_rbe: u64, lat_ns: u64) -> u64 {
    rbe_to_ns(cost_rbe) + lat_ns
}

fn rbe_to_ns(rbe: u64) -> u64 {
    rbe * 3
}
