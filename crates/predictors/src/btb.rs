//! Branch target buffer.
//!
//! The paper's baseline fetch predictor (§3): a tagged buffer of the
//! full target addresses of recently *taken* branches, plus the
//! branch type. The design is decoupled — conditional directions
//! come from the shared PHT, not from the BTB entry — and follows
//! the paper's policies: only taken branches are entered; an entry
//! is kept (not evicted) when its branch executes not-taken.

use nls_trace::{Addr, BreakKind};

/// Geometry of a BTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BtbConfig {
    /// Total entries (the paper evaluates 128 and 256).
    pub entries: usize,
    /// Associativity (1, 2 or 4 in the paper).
    pub assoc: u32,
}

impl BtbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` and `assoc` are powers of two with
    /// `assoc <= entries`.
    pub fn new(entries: usize, assoc: u32) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(entries.is_power_of_two(), "BTB entries must be a power of two");
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(assoc.is_power_of_two(), "BTB associativity must be a power of two");
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(entries >= assoc as usize, "BTB must have at least one set");
        BtbConfig { entries, assoc }
    }

    /// Number of sets. `new` asserts power-of-two geometry, so this
    /// is a shift on the hot path (with a division fallback for
    /// literal-constructed configs).
    #[inline]
    pub fn num_sets(&self) -> usize {
        if self.assoc.is_power_of_two() {
            self.entries >> self.assoc.trailing_zeros()
        } else {
            self.entries / self.assoc as usize
        }
    }

    /// Short label like `"128 direct BTB"` or `"256 4-way BTB"`.
    pub fn label(&self) -> String {
        if self.assoc == 1 {
            format!("{} direct BTB", self.entries)
        } else {
            format!("{} {}-way BTB", self.entries, self.assoc)
        }
    }
}

/// One BTB entry: tag, full target address and branch type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    /// The taken target address.
    pub target: Addr,
    /// The branch type, used to select the prediction source (PHT
    /// for conditionals, RAS for returns, the entry itself for the
    /// rest).
    pub kind: BreakKind,
}

/// A set-associative, LRU branch target buffer.
///
/// State is held struct-of-arrays: tags, targets, kinds and LRU
/// stamps live in four flat vectors indexed `set * assoc + way`, so
/// the tag scan of a set walks one contiguous `u64` run instead of
/// striding over boxed per-set slot vectors. A stamp of `0` marks an
/// empty way (the clock is incremented before every use, so every
/// valid stamp is >= 1), which makes victim selection a single
/// min-scan: an empty way's stamp 0 always loses to any valid stamp,
/// and ties resolve to the first way — exactly the old
/// first-empty-way-else-LRU policy.
///
/// # Examples
///
/// ```
/// use nls_predictors::{Btb, BtbConfig};
/// use nls_trace::{Addr, BreakKind};
///
/// let mut btb = Btb::new(BtbConfig::new(128, 4));
/// let pc = Addr::new(0x400);
/// assert!(btb.lookup(pc).is_none());
/// btb.insert(pc, Addr::new(0x800), BreakKind::Unconditional);
/// assert_eq!(btb.lookup(pc).unwrap().target, Addr::new(0x800));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    cfg: BtbConfig,
    tags: Vec<u64>,
    targets: Vec<Addr>,
    kinds: Vec<BreakKind>,
    /// LRU stamps; `0` = empty way, valid stamps are >= 1.
    stamps: Vec<u64>,
    clock: u64,
}

impl Btb {
    /// An empty BTB.
    pub fn new(cfg: BtbConfig) -> Self {
        let n = cfg.entries;
        Btb {
            cfg,
            tags: vec![0; n],
            targets: vec![Addr::new(0); n],
            kinds: vec![BreakKind::Conditional; n],
            stamps: vec![0; n],
            clock: 0,
        }
    }

    /// The geometry.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, pc: Addr) -> usize {
        let sets = self.cfg.num_sets() as u64;
        let i = pc.inst_index();
        (if sets.is_power_of_two() { i & (sets - 1) } else { i % sets }) as usize
    }

    #[inline]
    fn tag_of(&self, pc: Addr) -> u64 {
        let sets = self.cfg.num_sets() as u64;
        let i = pc.inst_index();
        if sets.is_power_of_two() {
            i >> sets.trailing_zeros()
        } else {
            i / sets
        }
    }

    /// The flat index of the valid way in `set` holding `tag`, if any.
    #[inline]
    fn find_way(&self, set: usize, tag: u64) -> Option<usize> {
        let assoc = self.cfg.assoc as usize;
        let base = set * assoc;
        let tags = self.tags.get(base..base + assoc)?;
        let stamps = self.stamps.get(base..base + assoc)?;
        tags.iter().zip(stamps).position(|(&t, &s)| s != 0 && t == tag).map(|way| base + way)
    }

    /// The entry at flat index `i` (caller guarantees validity).
    #[inline]
    fn entry_at(&self, i: usize) -> Option<BtbEntry> {
        Some(BtbEntry {
            target: self.targets.get(i).copied()?,
            kind: self.kinds.get(i).copied()?,
        })
    }

    /// Looks up `pc`, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        self.clock += 1;
        let i = self.find_way(self.set_of(pc), self.tag_of(pc))?;
        let clock = self.clock;
        if let Some(s) = self.stamps.get_mut(i) {
            *s = clock;
        }
        self.entry_at(i)
    }

    /// Looks up `pc` without touching LRU state.
    pub fn probe(&self, pc: Addr) -> Option<BtbEntry> {
        let i = self.find_way(self.set_of(pc), self.tag_of(pc))?;
        self.entry_at(i)
    }

    /// Inserts or updates the entry for a *taken* branch at `pc`.
    /// Existing entries are updated in place; otherwise the LRU way
    /// of the set is replaced (empty ways first).
    pub fn insert(&mut self, pc: Addr, target: Addr, kind: BreakKind) {
        self.clock += 1;
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let clock = self.clock;
        let i = match self.find_way(set, tag) {
            // Update in place on a tag match.
            Some(i) => i,
            // Min-stamp scan: empty ways (stamp 0) always win, ties
            // resolve to the first way.
            None => {
                let assoc = self.cfg.assoc as usize;
                let base = set * assoc;
                let Some(stamps) = self.stamps.get(base..base + assoc) else { return };
                let way = stamps
                    .iter()
                    .enumerate()
                    .min_by_key(|&(_, &s)| s)
                    .map_or(0, |(way, _)| way);
                base + way
            }
        };
        if let Some(t) = self.tags.get_mut(i) {
            *t = tag;
        }
        if let Some(t) = self.targets.get_mut(i) {
            *t = target;
        }
        if let Some(k) = self.kinds.get_mut(i) {
            *k = kind;
        }
        if let Some(s) = self.stamps.get_mut(i) {
            *s = clock;
        }
    }

    /// Removes the entry for `pc`, returning whether one existed.
    /// Used by the evict-on-not-taken policy ablation (the paper
    /// deliberately *keeps* entries when their branch falls through).
    pub fn remove(&mut self, pc: Addr) -> bool {
        if let Some(i) = self.find_way(self.set_of(pc), self.tag_of(pc)) {
            if let Some(s) = self.stamps.get_mut(i) {
                *s = 0;
            }
            return true;
        }
        false
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.stamps.iter().filter(|&&s| s != 0).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc_in_set(set: u64, tag: u64, cfg: &BtbConfig) -> Addr {
        Addr::from_inst_index(tag * cfg.num_sets() as u64 + set)
    }

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(BtbConfig::new(16, 1));
        let pc = Addr::new(0x100);
        assert!(b.lookup(pc).is_none());
        b.insert(pc, Addr::new(0x200), BreakKind::Conditional);
        let e = b.lookup(pc).unwrap();
        assert_eq!(e.target, Addr::new(0x200));
        assert_eq!(e.kind, BreakKind::Conditional);
    }

    #[test]
    fn update_in_place_changes_target() {
        let mut b = Btb::new(BtbConfig::new(16, 2));
        let pc = Addr::new(0x100);
        b.insert(pc, Addr::new(0x200), BreakKind::IndirectJump);
        b.insert(pc, Addr::new(0x300), BreakKind::IndirectJump);
        assert_eq!(b.lookup(pc).unwrap().target, Addr::new(0x300));
        assert_eq!(b.occupancy(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let cfg = BtbConfig::new(16, 1);
        let mut b = Btb::new(cfg);
        let a = pc_in_set(3, 1, &cfg);
        let c = pc_in_set(3, 2, &cfg);
        b.insert(a, Addr::new(0x200), BreakKind::Call);
        b.insert(c, Addr::new(0x300), BreakKind::Call);
        assert!(b.lookup(a).is_none(), "conflicting insert evicted a");
        assert!(b.lookup(c).is_some());
    }

    #[test]
    fn lru_within_set() {
        let cfg = BtbConfig::new(16, 2);
        let mut b = Btb::new(cfg);
        let a = pc_in_set(3, 1, &cfg);
        let c = pc_in_set(3, 2, &cfg);
        let d = pc_in_set(3, 4, &cfg);
        b.insert(a, Addr::new(0x20), BreakKind::Call);
        b.insert(c, Addr::new(0x30), BreakKind::Call);
        let _ = b.lookup(a); // refresh a; c is LRU
        b.insert(d, Addr::new(0x40), BreakKind::Call);
        assert!(b.lookup(a).is_some());
        assert!(b.lookup(c).is_none());
        assert!(b.lookup(d).is_some());
    }

    #[test]
    fn probe_does_not_refresh_lru() {
        let cfg = BtbConfig::new(16, 2);
        let mut b = Btb::new(cfg);
        let a = pc_in_set(3, 1, &cfg);
        let c = pc_in_set(3, 2, &cfg);
        let d = pc_in_set(3, 4, &cfg);
        b.insert(a, Addr::new(0x20), BreakKind::Call);
        b.insert(c, Addr::new(0x30), BreakKind::Call);
        let _ = b.probe(a); // no refresh: a stays LRU
        b.insert(d, Addr::new(0x40), BreakKind::Call);
        assert!(b.probe(a).is_none(), "a was LRU and evicted");
    }

    #[test]
    fn labels() {
        assert_eq!(BtbConfig::new(128, 1).label(), "128 direct BTB");
        assert_eq!(BtbConfig::new(256, 4).label(), "256 4-way BTB");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_entries_panics() {
        let _ = BtbConfig::new(100, 1);
    }
}
