//! Branch target buffer.
//!
//! The paper's baseline fetch predictor (§3): a tagged buffer of the
//! full target addresses of recently *taken* branches, plus the
//! branch type. The design is decoupled — conditional directions
//! come from the shared PHT, not from the BTB entry — and follows
//! the paper's policies: only taken branches are entered; an entry
//! is kept (not evicted) when its branch executes not-taken.

use nls_trace::{Addr, BreakKind};

/// Geometry of a BTB.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct BtbConfig {
    /// Total entries (the paper evaluates 128 and 256).
    pub entries: usize,
    /// Associativity (1, 2 or 4 in the paper).
    pub assoc: u32,
}

impl BtbConfig {
    /// Creates a configuration.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` and `assoc` are powers of two with
    /// `assoc <= entries`.
    pub fn new(entries: usize, assoc: u32) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(entries.is_power_of_two(), "BTB entries must be a power of two");
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(assoc.is_power_of_two(), "BTB associativity must be a power of two");
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(entries >= assoc as usize, "BTB must have at least one set");
        BtbConfig { entries, assoc }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.entries / self.assoc as usize
    }

    /// Short label like `"128 direct BTB"` or `"256 4-way BTB"`.
    pub fn label(&self) -> String {
        if self.assoc == 1 {
            format!("{} direct BTB", self.entries)
        } else {
            format!("{} {}-way BTB", self.entries, self.assoc)
        }
    }
}

/// One BTB entry: tag, full target address and branch type.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BtbEntry {
    /// The taken target address.
    pub target: Addr,
    /// The branch type, used to select the prediction source (PHT
    /// for conditionals, RAS for returns, the entry itself for the
    /// rest).
    pub kind: BreakKind,
}

#[derive(Debug, Clone, Copy)]
struct Slot {
    tag: u64,
    entry: BtbEntry,
    stamp: u64,
}

/// A set-associative, LRU branch target buffer.
///
/// # Examples
///
/// ```
/// use nls_predictors::{Btb, BtbConfig};
/// use nls_trace::{Addr, BreakKind};
///
/// let mut btb = Btb::new(BtbConfig::new(128, 4));
/// let pc = Addr::new(0x400);
/// assert!(btb.lookup(pc).is_none());
/// btb.insert(pc, Addr::new(0x800), BreakKind::Unconditional);
/// assert_eq!(btb.lookup(pc).unwrap().target, Addr::new(0x800));
/// ```
#[derive(Debug, Clone)]
pub struct Btb {
    cfg: BtbConfig,
    sets: Vec<Vec<Option<Slot>>>,
    clock: u64,
}

impl Btb {
    /// An empty BTB.
    pub fn new(cfg: BtbConfig) -> Self {
        Btb { cfg, sets: vec![vec![None; cfg.assoc as usize]; cfg.num_sets()], clock: 0 }
    }

    /// The geometry.
    pub fn config(&self) -> &BtbConfig {
        &self.cfg
    }

    #[inline]
    fn set_of(&self, pc: Addr) -> usize {
        (pc.inst_index() % self.cfg.num_sets() as u64) as usize
    }

    #[inline]
    fn tag_of(&self, pc: Addr) -> u64 {
        pc.inst_index() / self.cfg.num_sets() as u64
    }

    /// Looks up `pc`, refreshing its LRU position on a hit.
    pub fn lookup(&mut self, pc: Addr) -> Option<BtbEntry> {
        self.clock += 1;
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let clock = self.clock;
        self.sets.get_mut(set)?.iter_mut().flatten().find(|s| s.tag == tag).map(|s| {
            s.stamp = clock;
            s.entry
        })
    }

    /// Looks up `pc` without touching LRU state.
    pub fn probe(&self, pc: Addr) -> Option<BtbEntry> {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        self.sets.get(set)?.iter().flatten().find(|s| s.tag == tag).map(|s| s.entry)
    }

    /// Inserts or updates the entry for a *taken* branch at `pc`.
    /// Existing entries are updated in place; otherwise the LRU way
    /// of the set is replaced.
    pub fn insert(&mut self, pc: Addr, target: Addr, kind: BreakKind) {
        self.clock += 1;
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        let entry = BtbEntry { target, kind };
        let clock = self.clock;
        let Some(ways) = self.sets.get_mut(set) else { return };
        // Update in place on a tag match.
        if let Some(slot) = ways.iter_mut().flatten().find(|s| s.tag == tag) {
            slot.entry = entry;
            slot.stamp = clock;
            return;
        }
        // Fill an empty way if one exists, else evict the LRU way.
        let victim = match ways.iter().position(Option::is_none) {
            Some(i) => i,
            None => ways
                .iter()
                .enumerate()
                .min_by_key(|(_, s)| s.map(|s| s.stamp).unwrap_or(0))
                .map_or(0, |(i, _)| i),
        };
        if let Some(slot) = ways.get_mut(victim) {
            *slot = Some(Slot { tag, entry, stamp: clock });
        }
    }

    /// Removes the entry for `pc`, returning whether one existed.
    /// Used by the evict-on-not-taken policy ablation (the paper
    /// deliberately *keeps* entries when their branch falls through).
    pub fn remove(&mut self, pc: Addr) -> bool {
        let set = self.set_of(pc);
        let tag = self.tag_of(pc);
        for slot in self.sets.get_mut(set).into_iter().flatten() {
            if slot.map(|s| s.tag) == Some(tag) {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Number of valid entries.
    pub fn occupancy(&self) -> usize {
        self.sets.iter().map(|s| s.iter().flatten().count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pc_in_set(set: u64, tag: u64, cfg: &BtbConfig) -> Addr {
        Addr::from_inst_index(tag * cfg.num_sets() as u64 + set)
    }

    #[test]
    fn miss_then_hit() {
        let mut b = Btb::new(BtbConfig::new(16, 1));
        let pc = Addr::new(0x100);
        assert!(b.lookup(pc).is_none());
        b.insert(pc, Addr::new(0x200), BreakKind::Conditional);
        let e = b.lookup(pc).unwrap();
        assert_eq!(e.target, Addr::new(0x200));
        assert_eq!(e.kind, BreakKind::Conditional);
    }

    #[test]
    fn update_in_place_changes_target() {
        let mut b = Btb::new(BtbConfig::new(16, 2));
        let pc = Addr::new(0x100);
        b.insert(pc, Addr::new(0x200), BreakKind::IndirectJump);
        b.insert(pc, Addr::new(0x300), BreakKind::IndirectJump);
        assert_eq!(b.lookup(pc).unwrap().target, Addr::new(0x300));
        assert_eq!(b.occupancy(), 1);
    }

    #[test]
    fn direct_mapped_conflict_evicts() {
        let cfg = BtbConfig::new(16, 1);
        let mut b = Btb::new(cfg);
        let a = pc_in_set(3, 1, &cfg);
        let c = pc_in_set(3, 2, &cfg);
        b.insert(a, Addr::new(0x200), BreakKind::Call);
        b.insert(c, Addr::new(0x300), BreakKind::Call);
        assert!(b.lookup(a).is_none(), "conflicting insert evicted a");
        assert!(b.lookup(c).is_some());
    }

    #[test]
    fn lru_within_set() {
        let cfg = BtbConfig::new(16, 2);
        let mut b = Btb::new(cfg);
        let a = pc_in_set(3, 1, &cfg);
        let c = pc_in_set(3, 2, &cfg);
        let d = pc_in_set(3, 4, &cfg);
        b.insert(a, Addr::new(0x20), BreakKind::Call);
        b.insert(c, Addr::new(0x30), BreakKind::Call);
        let _ = b.lookup(a); // refresh a; c is LRU
        b.insert(d, Addr::new(0x40), BreakKind::Call);
        assert!(b.lookup(a).is_some());
        assert!(b.lookup(c).is_none());
        assert!(b.lookup(d).is_some());
    }

    #[test]
    fn probe_does_not_refresh_lru() {
        let cfg = BtbConfig::new(16, 2);
        let mut b = Btb::new(cfg);
        let a = pc_in_set(3, 1, &cfg);
        let c = pc_in_set(3, 2, &cfg);
        let d = pc_in_set(3, 4, &cfg);
        b.insert(a, Addr::new(0x20), BreakKind::Call);
        b.insert(c, Addr::new(0x30), BreakKind::Call);
        let _ = b.probe(a); // no refresh: a stays LRU
        b.insert(d, Addr::new(0x40), BreakKind::Call);
        assert!(b.probe(a).is_none(), "a was LRU and evicted");
    }

    #[test]
    fn labels() {
        assert_eq!(BtbConfig::new(128, 1).label(), "128 direct BTB");
        assert_eq!(BtbConfig::new(256, 4).label(), "256 4-way BTB");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_entries_panics() {
        let _ = BtbConfig::new(100, 1);
    }
}
