//! Saturating counters.

/// An n-bit saturating up/down counter, the building block of
/// bimodal and two-level conditional branch predictors.
///
/// The counter predicts *taken* when its value is in the upper half
/// of its range. The paper's PHT uses 2-bit counters; the TFP (MIPS
/// R8000) comparison uses 1-bit counters.
///
/// # Examples
///
/// ```
/// use nls_predictors::SaturatingCounter;
///
/// let mut c = SaturatingCounter::new(2); // weakly not-taken (value 1)
/// assert!(!c.predict_taken());
/// c.update(true);
/// assert!(c.predict_taken());
/// c.update(true); // saturates at 3
/// c.update(false);
/// assert!(c.predict_taken()); // hysteresis: still taken
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SaturatingCounter {
    value: u8,
    max: u8,
}

impl SaturatingCounter {
    /// A counter with `bits` bits (1..=7), initialised to the weakly
    /// not-taken state just below the midpoint.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 7.
    pub fn new(bits: u8) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!((1..=7).contains(&bits), "counter width {bits} out of range");
        let max = (1u8 << bits) - 1;
        SaturatingCounter { value: max / 2, max }
    }

    /// A counter with an explicit initial value.
    ///
    /// # Panics
    ///
    /// Panics on invalid width or `value > max`.
    pub fn with_value(bits: u8, value: u8) -> Self {
        let mut c = Self::new(bits);
        assert!(value <= c.max, "initial value {value} exceeds max {}", c.max);
        c.value = value;
        c
    }

    /// Current counter value.
    #[inline]
    pub fn value(self) -> u8 {
        self.value
    }

    /// Maximum (saturation) value.
    #[inline]
    pub fn max(self) -> u8 {
        self.max
    }

    /// Predicted direction: taken when in the upper half.
    #[inline]
    pub fn predict_taken(self) -> bool {
        self.value > self.max / 2
    }

    /// Trains the counter with a resolved outcome.
    #[inline]
    pub fn update(&mut self, taken: bool) {
        if taken {
            if self.value < self.max {
                self.value += 1;
            }
        } else if self.value > 0 {
            self.value -= 1;
        }
    }
}

impl Default for SaturatingCounter {
    /// A 2-bit counter (the paper's PHT entry).
    fn default() -> Self {
        SaturatingCounter::new(2)
    }
}

/// A table of same-width saturating counters in struct-of-arrays
/// form: one contiguous byte per counter plus a single shared
/// saturation value, instead of a `Vec<SaturatingCounter>` that
/// stores `max` redundantly next to every value. Halves the table
/// footprint and keeps hot-loop counter reads on contiguous bytes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct CounterTable {
    values: Vec<u8>,
    max: u8,
}

impl CounterTable {
    /// A table of `entries` counters of `bits` bits, each initialised
    /// to the weakly not-taken state (same as [`SaturatingCounter::new`],
    /// which also validates the width).
    pub(crate) fn new(entries: usize, bits: u8) -> Self {
        let proto = SaturatingCounter::new(bits);
        CounterTable { values: vec![proto.value(); entries], max: proto.max() }
    }

    /// Number of counters.
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.values.len()
    }

    /// Predicted direction of counter `i`: taken when in the upper
    /// half. Out-of-range indices predict not-taken.
    #[inline]
    pub(crate) fn predict_taken(&self, i: usize) -> bool {
        self.values.get(i).is_some_and(|&v| v > self.max / 2)
    }

    /// Trains counter `i` with a resolved outcome (saturating).
    #[inline]
    pub(crate) fn update(&mut self, i: usize, taken: bool) {
        let max = self.max;
        if let Some(v) = self.values.get_mut(i) {
            if taken {
                if *v < max {
                    *v += 1;
                }
            } else if *v > 0 {
                *v -= 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturates_high_and_low() {
        let mut c = SaturatingCounter::new(2);
        for _ in 0..10 {
            c.update(true);
        }
        assert_eq!(c.value(), 3);
        for _ in 0..10 {
            c.update(false);
        }
        assert_eq!(c.value(), 0);
    }

    #[test]
    fn one_bit_counter_flips_immediately() {
        let mut c = SaturatingCounter::with_value(1, 0);
        assert!(!c.predict_taken());
        c.update(true);
        assert!(c.predict_taken());
        c.update(false);
        assert!(!c.predict_taken());
    }

    #[test]
    fn two_bit_hysteresis() {
        let mut c = SaturatingCounter::with_value(2, 3);
        c.update(false); // 3 -> 2: still predicts taken
        assert!(c.predict_taken());
        c.update(false); // 2 -> 1
        assert!(!c.predict_taken());
    }

    #[test]
    fn initial_state_is_weakly_not_taken() {
        assert!(!SaturatingCounter::new(2).predict_taken());
        assert_eq!(SaturatingCounter::new(2).value(), 1);
        assert!(!SaturatingCounter::new(3).predict_taken());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_bits_panics() {
        let _ = SaturatingCounter::new(0);
    }

    #[test]
    #[should_panic(expected = "exceeds max")]
    fn oversized_value_panics() {
        let _ = SaturatingCounter::with_value(2, 4);
    }

    #[test]
    fn counter_table_matches_scalar_counters() {
        // The SoA table must behave exactly like an array of
        // SaturatingCounters under any update sequence.
        let mut table = CounterTable::new(4, 2);
        let mut scalar = vec![SaturatingCounter::new(2); 4];
        assert_eq!(table.len(), 4);
        let ops =
            [(0, true), (0, true), (1, false), (0, false), (2, true), (0, true), (1, true)];
        for &(i, taken) in &ops {
            table.update(i, taken);
            if let Some(c) = scalar.get_mut(i) {
                c.update(taken);
            }
            for (j, c) in scalar.iter().enumerate() {
                assert_eq!(table.predict_taken(j), c.predict_taken(), "counter {j}");
            }
        }
        assert!(!table.predict_taken(99), "out of range predicts not-taken");
    }

    #[test]
    fn counter_table_one_bit_flips_immediately() {
        let mut t = CounterTable::new(2, 1);
        assert!(!t.predict_taken(0));
        t.update(0, true);
        assert!(t.predict_taken(0));
        t.update(0, false);
        assert!(!t.predict_taken(0));
    }
}
