//! Global branch-history register.

/// A k-bit global history register (GHR) recording the outcomes of
/// the most recent conditional branches: taken = 1, not-taken = 0,
/// newest outcome in the least-significant bit.
///
/// # Examples
///
/// ```
/// use nls_predictors::GlobalHistory;
///
/// let mut ghr = GlobalHistory::new(4);
/// ghr.push(true);
/// ghr.push(false);
/// ghr.push(true);
/// assert_eq!(ghr.value(), 0b101);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct GlobalHistory {
    bits: u8,
    value: u64,
}

impl GlobalHistory {
    /// A zeroed history register of `bits` bits (1..=63).
    ///
    /// # Panics
    ///
    /// Panics if `bits` is zero or greater than 63.
    pub fn new(bits: u8) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!((1..=63).contains(&bits), "history width {bits} out of range");
        GlobalHistory { bits, value: 0 }
    }

    /// Shifts in one resolved outcome.
    #[inline]
    pub fn push(&mut self, taken: bool) {
        self.value = ((self.value << 1) | u64::from(taken)) & ((1u64 << self.bits) - 1);
    }

    /// The current history pattern.
    #[inline]
    pub fn value(&self) -> u64 {
        self.value
    }

    /// The register width in bits.
    #[inline]
    pub fn bits(&self) -> u8 {
        self.bits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pushes_shift_left() {
        let mut g = GlobalHistory::new(8);
        for t in [true, true, false, true] {
            g.push(t);
        }
        assert_eq!(g.value(), 0b1101);
    }

    #[test]
    fn truncates_to_width() {
        let mut g = GlobalHistory::new(2);
        for _ in 0..5 {
            g.push(true);
        }
        assert_eq!(g.value(), 0b11);
        g.push(false);
        assert_eq!(g.value(), 0b10);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn zero_width_panics() {
        let _ = GlobalHistory::new(0);
    }
}
