//! Johnson-style coupled successor-index prediction.
//!
//! Related-work baseline (§6.2): Johnson's design — also used by the
//! TFP (MIPS R8000) and, with 2-bit counters, the UltraSPARC —
//! stores a *successor index* with each cache-line region: a pointer
//! to whatever line was fetched next the last time, whether that was
//! the taken target or the fall-through. The pointer doubles as a
//! one-bit direction predictor and is updated on **every** branch
//! execution (the paper's NLS, by contrast, updates the pointer only
//! on taken branches and gets direction from the decoupled PHT).

use nls_trace::Addr;

use crate::nls::LinePointer;
use crate::nls_cache::NlsCacheConfig;

/// One successor-index entry: the predicted next fetch location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SuccessorEntry {
    /// Predicted next-fetch location, `None` until first trained.
    pub next: Option<LinePointer>,
}

/// The per-frame successor-index array of a Johnson-style NLS-cache.
///
/// Shares the [`NlsCacheConfig`] geometry with the coupled NLS-cache
/// (the paper compares them at one predictor per four instructions).
#[derive(Debug, Clone)]
pub struct JohnsonPredictors {
    cfg: NlsCacheConfig,
    entries: Vec<SuccessorEntry>,
}

impl JohnsonPredictors {
    /// An array with all entries untrained.
    pub fn new(cfg: NlsCacheConfig) -> Self {
        JohnsonPredictors {
            cfg,
            entries: vec![SuccessorEntry::default(); cfg.total_predictors()],
        }
    }

    /// The geometry.
    pub fn config(&self) -> &NlsCacheConfig {
        &self.cfg
    }

    #[inline]
    fn slot(&self, set: u32, way: u8, inst_offset: u32) -> usize {
        debug_assert!(set < self.cfg.sets);
        debug_assert!(u32::from(way) < self.cfg.ways);
        debug_assert!(inst_offset < self.cfg.insts_per_line);
        let pred = inst_offset / self.cfg.insts_per_pred();
        ((set * self.cfg.ways + u32::from(way)) * self.cfg.preds_per_line + pred) as usize
    }

    /// The successor entry covering the branch at
    /// `(set, way, inst_offset)`.
    #[inline]
    pub fn lookup(&self, set: u32, way: u8, inst_offset: u32) -> SuccessorEntry {
        self.entries.get(self.slot(set, way, inst_offset)).copied().unwrap_or_default()
    }

    /// Johnson's update rule: after *every* branch execution, point
    /// the entry at wherever control actually went (taken target or
    /// fall-through). `next` is the resolved next-fetch location, if
    /// it is resident in the cache.
    pub fn update(&mut self, set: u32, way: u8, inst_offset: u32, next: Option<LinePointer>) {
        let i = self.slot(set, way, inst_offset);
        if let Some(e) = self.entries.get_mut(i) {
            *e = SuccessorEntry { next };
        }
    }

    /// Invalidates the predictors of a refilled frame.
    pub fn invalidate_line(&mut self, set: u32, way: u8) {
        let base = ((set * self.cfg.ways + u32::from(way)) * self.cfg.preds_per_line) as usize;
        let n = self.cfg.preds_per_line as usize;
        for e in self.entries.iter_mut().skip(base).take(n) {
            *e = SuccessorEntry::default();
        }
    }

    /// Convenience: offset of `pc` within its line.
    pub fn inst_offset(pc: Addr, line_bytes: u64) -> u32 {
        u32::try_from(pc.offset_in_line(line_bytes)).unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nls_icache::CacheConfig;

    fn cfg() -> NlsCacheConfig {
        NlsCacheConfig::for_cache(&CacheConfig::paper(8, 1), 2)
    }

    #[test]
    fn starts_untrained() {
        let p = JohnsonPredictors::new(cfg());
        assert_eq!(p.lookup(0, 0, 0).next, None);
    }

    #[test]
    fn update_overwrites_on_every_execution() {
        let mut p = JohnsonPredictors::new(cfg());
        let target = LinePointer { set: 9, way: 0, inst: 0 };
        let fallthrough = LinePointer { set: 1, way: 0, inst: 3 };
        p.update(0, 0, 2, Some(target));
        assert_eq!(p.lookup(0, 0, 2).next, Some(target));
        // A not-taken execution flips the pointer to the fall-through
        // (this is the one-bit behaviour the paper improves on).
        p.update(0, 0, 2, Some(fallthrough));
        assert_eq!(p.lookup(0, 0, 2).next, Some(fallthrough));
    }

    #[test]
    fn invalidate_clears_frame() {
        let mut p = JohnsonPredictors::new(cfg());
        p.update(3, 0, 0, Some(LinePointer::default()));
        p.invalidate_line(3, 0);
        assert_eq!(p.lookup(3, 0, 0).next, None);
    }
}
