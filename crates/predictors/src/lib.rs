//! Branch-prediction structures for the NLS reproduction.
//!
//! Everything the paper's two fetch architectures are assembled
//! from (Calder & Grunwald, *Next Cache Line and Set Prediction*,
//! ISCA 1995):
//!
//! * [`SaturatingCounter`], [`GlobalHistory`], [`Pht`] — conditional
//!   direction prediction: the shared 4096-entry gshare PHT of §3,
//!   plus the Pan-et-al "degenerate", bimodal and static variants
//!   for ablations.
//! * [`ReturnStack`] — the 32-entry circular return-address stack.
//! * [`Btb`] — the tagged branch target buffer baseline (taken-only
//!   allocation, keep-on-not-taken, LRU).
//! * [`NlsTable`] — the paper's contribution: a tag-less table of
//!   [`NlsEntry`] cache pointers decoupled from the cache.
//! * [`NlsCachePredictors`] — the coupled organisation with
//!   predictors attached to cache-line frames.
//! * [`JohnsonPredictors`] — Johnson's successor-index design with
//!   coupled one-bit direction prediction (§6.2 related work).
//!
//! These are pure data structures; the fetch *engines* that combine
//! them with an instruction cache and classify misfetches and
//! mispredicts live in the `nls-core` crate.

mod btb;
mod counter;
mod history;
mod johnson;
mod nls;
mod nls_cache;
mod nls_table;
mod pht;
mod ras;
mod type_table;

pub use btb::{Btb, BtbConfig, BtbEntry};
pub use counter::SaturatingCounter;
pub use history::GlobalHistory;
pub use johnson::{JohnsonPredictors, SuccessorEntry};
pub use nls::{LinePointer, NlsEntry, NlsType};
pub use nls_cache::{NlsCacheConfig, NlsCachePredictors};
pub use nls_table::NlsTable;
pub use pht::{DirectionPredictor, Pht, PhtIndexing, StaticPolicy, StaticPredictor};
pub use ras::ReturnStack;
pub use type_table::BranchTypeTable;
