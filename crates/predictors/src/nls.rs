//! NLS predictor entry types shared by the NLS-table and NLS-cache
//! organisations.

use nls_icache::InstructionCache;
use nls_trace::{Addr, BreakKind};

/// The two-bit NLS type field (§4 of the paper): selects the
/// prediction source used when the fetched instruction is a branch.
///
/// | bits | meaning              | prediction source          |
/// |------|----------------------|----------------------------|
/// | 00   | invalid entry        | — (fall through)           |
/// | 01   | return               | return stack               |
/// | 10   | conditional branch   | NLS entry, gated by PHT    |
/// | 11   | other branch types   | always the NLS entry       |
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum NlsType {
    /// Unused entry (`00`).
    #[default]
    Invalid,
    /// Return instruction (`01`): predict through the return stack.
    Return,
    /// Conditional branch (`10`): use the entry if the PHT predicts
    /// taken, the precomputed fall-through line otherwise.
    Conditional,
    /// Unconditional branch, call or indirect jump (`11`): always
    /// use the entry.
    Other,
}

impl From<BreakKind> for NlsType {
    fn from(kind: BreakKind) -> Self {
        match kind {
            BreakKind::Return => NlsType::Return,
            BreakKind::Conditional => NlsType::Conditional,
            BreakKind::Unconditional | BreakKind::Call | BreakKind::IndirectJump => {
                NlsType::Other
            }
        }
    }
}

/// A pointer into the instruction cache: the paper's *line field*
/// (cache row + instruction within the line) and *set field* (which
/// this crate calls the way).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct LinePointer {
    /// Cache set (row) index — the high-order bits of the paper's
    /// line field.
    pub set: u32,
    /// Way within the set — the paper's set field.
    pub way: u8,
    /// Instruction offset within the line — the low-order bits of
    /// the paper's line field.
    pub inst: u8,
}

impl LinePointer {
    /// The pointer for `addr` given where its line currently resides
    /// in `cache`, or `None` if the line is not resident.
    pub fn locate(addr: Addr, cache: &InstructionCache) -> Option<LinePointer> {
        let way = cache.probe(addr)?;
        let cfg = cache.config();
        Some(LinePointer {
            // Out-of-range values (impossible for sane geometries)
            // saturate, so the pointer fails `points_to` instead of
            // aliasing a real location.
            set: u32::try_from(cfg.set_index(addr)).unwrap_or(u32::MAX),
            way,
            inst: u8::try_from(addr.offset_in_line(cfg.line_bytes)).unwrap_or(u8::MAX),
        })
    }

    /// Whether this pointer currently fetches the instruction at
    /// `addr` from `cache`: the set/offset bits must match `addr`
    /// and `addr`'s line must be resident in the predicted way.
    ///
    /// A stale pointer — the target line was displaced, or the entry
    /// belongs to a different branch — fails this check and costs a
    /// misfetch (§7 of the paper).
    pub fn points_to(&self, addr: Addr, cache: &InstructionCache) -> bool {
        let cfg = cache.config();
        u64::from(self.set) == cfg.set_index(addr)
            && u64::from(self.inst) == addr.offset_in_line(cfg.line_bytes)
            && cache.resident_at(addr, self.way)
    }
}

/// A complete NLS predictor entry: type field plus cache pointer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct NlsEntry {
    /// The two-bit type field.
    pub ty: NlsType,
    /// The line/set pointer (meaningful unless `ty` is `Invalid`).
    pub ptr: LinePointer,
}

impl NlsEntry {
    /// Applies the paper's update rules after a branch resolves:
    /// every executed branch updates the type field; only *taken*
    /// branches update the line and set fields (a fall-through must
    /// not erase the pointer to the taken target).
    pub fn update(&mut self, kind: BreakKind, taken: bool, target: Option<LinePointer>) {
        self.ty = kind.into();
        if taken {
            if let Some(ptr) = target {
                self.ptr = ptr;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use nls_icache::CacheConfig;

    #[test]
    fn type_field_mapping() {
        assert_eq!(NlsType::from(BreakKind::Return), NlsType::Return);
        assert_eq!(NlsType::from(BreakKind::Conditional), NlsType::Conditional);
        assert_eq!(NlsType::from(BreakKind::Unconditional), NlsType::Other);
        assert_eq!(NlsType::from(BreakKind::Call), NlsType::Other);
        assert_eq!(NlsType::from(BreakKind::IndirectJump), NlsType::Other);
    }

    #[test]
    fn locate_and_points_to_round_trip() {
        let mut cache = InstructionCache::new(CacheConfig::paper(8, 2));
        let addr = Addr::new(0x1234 & !3);
        assert_eq!(LinePointer::locate(addr, &cache), None);
        cache.access(addr);
        let ptr = LinePointer::locate(addr, &cache).unwrap();
        assert!(ptr.points_to(addr, &cache));
        assert_eq!(u64::from(ptr.inst), addr.offset_in_line(32));
    }

    #[test]
    fn displaced_line_breaks_pointer() {
        let cfg = CacheConfig::paper(8, 1);
        let mut cache = InstructionCache::new(cfg);
        let a = Addr::new(0x1000);
        let conflicting = Addr::new(0x1000 + cfg.size_bytes); // same set, different tag
        cache.access(a);
        let ptr = LinePointer::locate(a, &cache).unwrap();
        cache.access(conflicting);
        assert!(!ptr.points_to(a, &cache), "displaced target must not verify");
    }

    #[test]
    fn pointer_does_not_match_other_address() {
        let mut cache = InstructionCache::new(CacheConfig::paper(8, 1));
        let a = Addr::new(0x1000);
        let b = Addr::new(0x1004); // same line, different instruction
        cache.access(a);
        let ptr = LinePointer::locate(a, &cache).unwrap();
        assert!(!ptr.points_to(b, &cache));
    }

    #[test]
    fn update_rules() {
        let mut cache = InstructionCache::new(CacheConfig::paper(8, 1));
        let t1 = Addr::new(0x2000);
        cache.access(t1);
        let p1 = LinePointer::locate(t1, &cache).unwrap();

        let mut e = NlsEntry::default();
        assert_eq!(e.ty, NlsType::Invalid);
        e.update(BreakKind::Conditional, true, Some(p1));
        assert_eq!(e.ty, NlsType::Conditional);
        assert_eq!(e.ptr, p1);

        // Not taken: type may change, pointer must be preserved.
        e.update(BreakKind::Conditional, false, None);
        assert_eq!(e.ptr, p1, "fall-through must not erase the target pointer");
    }
}
