//! The NLS-cache: NLS predictors coupled to instruction-cache lines.
//!
//! The organisation Johnson proposed and the paper uses as its
//! coupled baseline (§4.1): each cache line frame carries a fixed
//! number of NLS predictors (the paper found two per 8-instruction
//! line most effective, each covering half the line). Because the
//! predictors belong to the *frame*, they are invalidated whenever
//! the frame is refilled, and a line with more branches than
//! predictors must share them.

use nls_trace::{Addr, BreakKind};

use crate::nls::{LinePointer, NlsEntry};

/// Geometry of an NLS-cache predictor array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NlsCacheConfig {
    /// Cache sets (rows) — must match the instruction cache.
    pub sets: u32,
    /// Cache ways — must match the instruction cache.
    pub ways: u32,
    /// Instructions per cache line.
    pub insts_per_line: u32,
    /// Predictors per line (the paper evaluates 1, 2 and 4; 2 is the
    /// recommended configuration).
    pub preds_per_line: u32,
}

impl NlsCacheConfig {
    /// Derives the predictor geometry from a cache configuration.
    ///
    /// # Panics
    ///
    /// Panics if `preds_per_line` is zero or does not divide the
    /// instructions per line.
    pub fn for_cache(cache: &nls_icache::CacheConfig, preds_per_line: u32) -> Self {
        let insts_per_line = u32::try_from(cache.insts_per_line()).unwrap_or(u32::MAX);
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(preds_per_line > 0, "need at least one predictor per line");
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(
            insts_per_line % preds_per_line == 0,
            "predictors must evenly partition the line"
        );
        NlsCacheConfig {
            sets: u32::try_from(cache.num_sets()).unwrap_or(u32::MAX),
            ways: cache.assoc,
            insts_per_line,
            preds_per_line,
        }
    }

    /// Total predictor entries (sets × ways × predictors/line).
    pub fn total_predictors(&self) -> usize {
        (self.sets * self.ways * self.preds_per_line) as usize
    }

    /// Instructions covered by each predictor.
    pub fn insts_per_pred(&self) -> u32 {
        self.insts_per_line / self.preds_per_line
    }
}

/// The per-frame NLS predictor array of an NLS-cache.
///
/// Predictors are addressed by the *branch's own* location in the
/// cache: `(set, way)` of the frame holding the branch plus the
/// branch's offset within the line. [`NlsCachePredictors::invalidate_line`]
/// must be called whenever the instruction cache refills a frame.
///
/// # Examples
///
/// ```
/// use nls_icache::CacheConfig;
/// use nls_predictors::{NlsCacheConfig, NlsCachePredictors, NlsType};
/// use nls_trace::BreakKind;
///
/// let cfg = NlsCacheConfig::for_cache(&CacheConfig::paper(8, 1), 2);
/// let mut preds = NlsCachePredictors::new(cfg);
/// preds.update(3, 0, 1, BreakKind::Call, true, None);
/// assert_eq!(preds.lookup(3, 0, 1).ty, NlsType::Other);
/// // Offset 1 and offset 2 share the first predictor of the line:
/// assert_eq!(preds.lookup(3, 0, 2).ty, NlsType::Other);
/// // The second half of an 8-instruction line uses the second predictor:
/// assert_eq!(preds.lookup(3, 0, 4).ty, NlsType::Invalid);
/// ```
#[derive(Debug, Clone)]
pub struct NlsCachePredictors {
    cfg: NlsCacheConfig,
    /// Struct-of-arrays layout: one-byte type fields and the wider
    /// line pointers in separate contiguous vectors (same length), so
    /// refill invalidation and type probes walk packed bytes.
    types: Vec<crate::nls::NlsType>,
    ptrs: Vec<LinePointer>,
}

impl NlsCachePredictors {
    /// A predictor array with all entries invalid.
    pub fn new(cfg: NlsCacheConfig) -> Self {
        let n = cfg.total_predictors();
        NlsCachePredictors {
            cfg,
            types: vec![crate::nls::NlsType::Invalid; n],
            ptrs: vec![LinePointer::default(); n],
        }
    }

    /// The geometry.
    pub fn config(&self) -> &NlsCacheConfig {
        &self.cfg
    }

    #[inline]
    fn slot(&self, set: u32, way: u8, inst_offset: u32) -> usize {
        debug_assert!(set < self.cfg.sets, "set {set} out of range");
        debug_assert!(u32::from(way) < self.cfg.ways, "way {way} out of range");
        debug_assert!(
            inst_offset < self.cfg.insts_per_line,
            "offset {inst_offset} out of range"
        );
        let ipp = self.cfg.insts_per_pred();
        // Power of two for every paper geometry — shift, don't divide.
        let pred = if ipp.is_power_of_two() {
            inst_offset >> ipp.trailing_zeros()
        } else {
            inst_offset / ipp
        };
        ((set * self.cfg.ways + u32::from(way)) * self.cfg.preds_per_line + pred) as usize
    }

    /// The predictor covering the branch at `(set, way, inst_offset)`.
    #[inline]
    pub fn lookup(&self, set: u32, way: u8, inst_offset: u32) -> NlsEntry {
        let i = self.slot(set, way, inst_offset);
        NlsEntry {
            ty: self.types.get(i).copied().unwrap_or_default(),
            ptr: self.ptrs.get(i).copied().unwrap_or_default(),
        }
    }

    /// Resolution-time update (same rules as the NLS-table).
    pub fn update(
        &mut self,
        set: u32,
        way: u8,
        inst_offset: u32,
        kind: BreakKind,
        taken: bool,
        target: Option<LinePointer>,
    ) {
        let i = self.slot(set, way, inst_offset);
        if let Some(ty) = self.types.get_mut(i) {
            *ty = kind.into();
        }
        if taken {
            if let Some(ptr) = target {
                if let Some(slot) = self.ptrs.get_mut(i) {
                    *slot = ptr;
                }
            }
        }
    }

    /// Invalidates every predictor of the frame at `(set, way)`;
    /// call on every cache-line refill. This is the structural
    /// weakness of the coupled design: a cache miss destroys
    /// prediction state.
    pub fn invalidate_line(&mut self, set: u32, way: u8) {
        let base = ((set * self.cfg.ways + u32::from(way)) * self.cfg.preds_per_line) as usize;
        let n = self.cfg.preds_per_line as usize;
        for ty in self.types.iter_mut().skip(base).take(n) {
            *ty = crate::nls::NlsType::Invalid;
        }
        for ptr in self.ptrs.iter_mut().skip(base).take(n) {
            *ptr = LinePointer::default();
        }
    }

    /// Number of valid predictor entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.types.iter().filter(|&&ty| ty != crate::nls::NlsType::Invalid).count()
    }

    /// Convenience: the offset of `pc` within its cache line, for a
    /// `line_bytes`-byte line.
    pub fn inst_offset(pc: Addr, line_bytes: u64) -> u32 {
        u32::try_from(pc.offset_in_line(line_bytes)).unwrap_or(u32::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nls::NlsType;
    use nls_icache::CacheConfig;

    fn cfg2() -> NlsCacheConfig {
        NlsCacheConfig::for_cache(&CacheConfig::paper(8, 2), 2)
    }

    #[test]
    fn geometry() {
        let c = cfg2();
        assert_eq!(c.sets, 128);
        assert_eq!(c.ways, 2);
        assert_eq!(c.insts_per_pred(), 4);
        assert_eq!(c.total_predictors(), 128 * 2 * 2);
    }

    #[test]
    fn halves_of_line_use_distinct_predictors() {
        let mut p = NlsCachePredictors::new(cfg2());
        p.update(0, 0, 0, BreakKind::Return, true, None);
        p.update(0, 0, 7, BreakKind::Call, true, None);
        assert_eq!(p.lookup(0, 0, 3).ty, NlsType::Return);
        assert_eq!(p.lookup(0, 0, 4).ty, NlsType::Other);
    }

    #[test]
    fn branches_in_same_half_share() {
        let mut p = NlsCachePredictors::new(cfg2());
        p.update(5, 1, 0, BreakKind::Return, true, None);
        p.update(5, 1, 3, BreakKind::Call, true, None);
        // The later update overwrote the shared predictor.
        assert_eq!(p.lookup(5, 1, 0).ty, NlsType::Other);
    }

    #[test]
    fn invalidate_line_clears_only_that_frame() {
        let mut p = NlsCachePredictors::new(cfg2());
        p.update(5, 0, 0, BreakKind::Call, true, None);
        p.update(5, 1, 0, BreakKind::Call, true, None);
        p.invalidate_line(5, 0);
        assert_eq!(p.lookup(5, 0, 0).ty, NlsType::Invalid);
        assert_eq!(p.lookup(5, 1, 0).ty, NlsType::Other, "other way untouched");
    }

    #[test]
    fn ways_are_independent() {
        let mut p = NlsCachePredictors::new(cfg2());
        p.update(9, 0, 2, BreakKind::Return, true, None);
        assert_eq!(p.lookup(9, 1, 2).ty, NlsType::Invalid);
    }

    #[test]
    fn one_pred_per_line_covers_whole_line() {
        let c = NlsCacheConfig::for_cache(&CacheConfig::paper(8, 1), 1);
        let mut p = NlsCachePredictors::new(c);
        p.update(0, 0, 7, BreakKind::Call, true, None);
        assert_eq!(p.lookup(0, 0, 0).ty, NlsType::Other);
    }

    #[test]
    #[should_panic(expected = "evenly partition")]
    fn uneven_partition_panics() {
        let _ = NlsCacheConfig::for_cache(&CacheConfig::paper(8, 1), 3);
    }
}
