//! The NLS-table: a tag-less, direct-mapped table of NLS predictors.
//!
//! This is the paper's contribution (§4.1): NLS predictors are
//! *decoupled* from the instruction cache and stored in a separate
//! buffer indexed by the low-order bits of the branch address. A
//! cache line can use as many predictors as it has branches,
//! prediction state survives cache misses, and the table grows only
//! logarithmically with cache size. Being tag-less, two branches
//! that collide in the table silently share an entry — the paper
//! measured this aliasing effect to be small.

use nls_trace::{Addr, BreakKind};

use crate::nls::{LinePointer, NlsEntry};

/// A tag-less direct-mapped NLS predictor table.
///
/// # Examples
///
/// ```
/// use nls_predictors::{NlsTable, NlsType};
/// use nls_trace::{Addr, BreakKind};
///
/// let mut table = NlsTable::new(1024);
/// let pc = Addr::new(0x400);
/// assert_eq!(table.lookup(pc).ty, NlsType::Invalid);
/// table.update(pc, BreakKind::Conditional, true, None);
/// assert_eq!(table.lookup(pc).ty, NlsType::Conditional);
/// ```
#[derive(Debug, Clone)]
pub struct NlsTable {
    /// Struct-of-arrays layout: the one-byte type fields and the
    /// wider line pointers live in separate contiguous vectors, so a
    /// type-only probe (the common case on the batched hot path)
    /// touches a dense byte array instead of striding over full
    /// entries. `types` and `ptrs` always have the same length.
    types: Vec<crate::nls::NlsType>,
    ptrs: Vec<LinePointer>,
}

impl NlsTable {
    /// A table with `entries` predictors, all invalid.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(entries.is_power_of_two(), "NLS table entries must be a power of two");
        NlsTable {
            types: vec![crate::nls::NlsType::Invalid; entries],
            ptrs: vec![LinePointer::default(); entries],
        }
    }

    /// Number of predictor entries.
    pub fn len(&self) -> usize {
        self.types.len()
    }

    /// Whether the table has no entries (never true: size >= 1).
    pub fn is_empty(&self) -> bool {
        self.types.is_empty()
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        // `new` asserts a power-of-two size, so modulo is a mask.
        (pc.inst_index() & (self.types.len() as u64 - 1)) as usize
    }

    /// The predictor for the branch at `pc`. Tag-less: aliased
    /// branches share the entry.
    #[inline]
    pub fn lookup(&self, pc: Addr) -> NlsEntry {
        let i = self.index(pc);
        NlsEntry {
            ty: self.types.get(i).copied().unwrap_or_default(),
            ptr: self.ptrs.get(i).copied().unwrap_or_default(),
        }
    }

    /// Applies the resolution-time update rules for the branch at
    /// `pc` (same rules as [`NlsEntry::update`]: every executed
    /// branch rewrites the type field; only taken branches with a
    /// resident target rewrite the pointer).
    pub fn update(
        &mut self,
        pc: Addr,
        kind: BreakKind,
        taken: bool,
        target: Option<LinePointer>,
    ) {
        let i = self.index(pc);
        if let Some(ty) = self.types.get_mut(i) {
            *ty = kind.into();
        }
        if taken {
            if let Some(ptr) = target {
                if let Some(slot) = self.ptrs.get_mut(i) {
                    *slot = ptr;
                }
            }
        }
    }

    /// Number of non-invalid entries (diagnostics).
    pub fn occupancy(&self) -> usize {
        self.types.iter().filter(|&&ty| ty != crate::nls::NlsType::Invalid).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::nls::NlsType;

    #[test]
    fn starts_invalid() {
        let t = NlsTable::new(512);
        assert_eq!(t.lookup(Addr::new(0x123 & !3)).ty, NlsType::Invalid);
        assert_eq!(t.occupancy(), 0);
    }

    #[test]
    fn aliasing_shares_entries() {
        let mut t = NlsTable::new(16);
        let a = Addr::from_inst_index(5);
        let b = Addr::from_inst_index(5 + 16); // collides with a
        t.update(a, BreakKind::Return, true, None);
        assert_eq!(t.lookup(b).ty, NlsType::Return, "tag-less: b sees a's entry");
    }

    #[test]
    fn distinct_indices_do_not_alias() {
        let mut t = NlsTable::new(16);
        t.update(Addr::from_inst_index(5), BreakKind::Return, true, None);
        assert_eq!(t.lookup(Addr::from_inst_index(6)).ty, NlsType::Invalid);
    }

    #[test]
    fn pointer_updated_only_when_taken() {
        let mut t = NlsTable::new(16);
        let pc = Addr::from_inst_index(3);
        let ptr = LinePointer { set: 7, way: 1, inst: 2 };
        t.update(pc, BreakKind::Conditional, true, Some(ptr));
        assert_eq!(t.lookup(pc).ptr, ptr);
        t.update(pc, BreakKind::Conditional, false, Some(LinePointer::default()));
        assert_eq!(t.lookup(pc).ptr, ptr, "not-taken must preserve the pointer");
    }

    #[test]
    fn occupancy_counts_valid_entries() {
        let mut t = NlsTable::new(16);
        t.update(Addr::from_inst_index(1), BreakKind::Call, true, None);
        t.update(Addr::from_inst_index(2), BreakKind::Return, true, None);
        assert_eq!(t.occupancy(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let _ = NlsTable::new(1000);
    }
}
