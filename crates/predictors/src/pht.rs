//! Pattern history tables for conditional-branch direction
//! prediction.
//!
//! The paper's BTB and NLS architectures share a *decoupled* 4096
//! entry two-level PHT indexed by McFarling's gshare scheme (global
//! history XOR branch address). This module implements that
//! predictor plus the alternatives discussed in §2 — the degenerate
//! global scheme of Pan et al. (history-only indexing), a plain
//! PC-indexed bimodal table, and static prediction — so the choice
//! can be ablated.

use nls_trace::Addr;

use crate::counter::CounterTable;
use crate::history::GlobalHistory;

/// A conditional-branch direction predictor.
///
/// `predict` must not mutate prediction state; `update` trains the
/// predictor with the resolved outcome (and is where global history
/// advances).
pub trait DirectionPredictor {
    /// Predicts the direction of the conditional branch at `pc`.
    fn predict(&self, pc: Addr) -> bool;
    /// Trains with the resolved outcome of the branch at `pc`.
    fn update(&mut self, pc: Addr, taken: bool);
    /// A short display name for reports.
    fn name(&self) -> &'static str;
}

/// How a [`Pht`] forms its table index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PhtIndexing {
    /// McFarling's gshare: `(GHR ^ (pc/4)) % entries` — the paper's
    /// configuration.
    Gshare,
    /// The "degenerate" two-level scheme of Pan et al.: history only.
    GlobalOnly,
    /// Classic bimodal: PC only, no history.
    Bimodal,
    /// McFarling's *combining* predictor (the same TN-36 report the
    /// paper cites for gshare): a gshare table and a bimodal table
    /// arbitrated by a PC-indexed 2-bit chooser.
    Tournament,
}

/// A pattern history table of saturating counters with a global
/// history register.
///
/// # Examples
///
/// ```
/// use nls_predictors::{DirectionPredictor, Pht, PhtIndexing};
/// use nls_trace::Addr;
///
/// let mut pht = Pht::paper(); // 4096-entry gshare, 2-bit counters
/// let pc = Addr::new(0x1000);
/// for _ in 0..20 {
///     pht.update(pc, true); // train past history saturation
/// }
/// assert!(pht.predict(pc));
/// ```
#[derive(Debug, Clone)]
pub struct Pht {
    /// Counter state lives in struct-of-arrays [`CounterTable`]s —
    /// one contiguous byte per counter, saturation value shared —
    /// so the hot predict/update path walks packed bytes.
    table: CounterTable,
    history: GlobalHistory,
    indexing: PhtIndexing,
    /// Tournament only: the bimodal side table and the chooser
    /// (chooser predicts-taken = "use gshare").
    second: Option<CounterTable>,
    chooser: Option<CounterTable>,
}

impl Pht {
    /// A PHT with `entries` counters of `counter_bits` bits and a
    /// history register sized `log2(entries)` bits.
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize, counter_bits: u8, indexing: PhtIndexing) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(entries.is_power_of_two(), "PHT entries must be a power of two");
        let hist_bits = u8::try_from(entries.trailing_zeros()).unwrap_or(u8::MAX);
        let aux = (indexing == PhtIndexing::Tournament)
            .then(|| CounterTable::new(entries, counter_bits));
        Pht {
            table: CounterTable::new(entries, counter_bits),
            history: GlobalHistory::new(hist_bits),
            indexing,
            second: aux.clone(),
            chooser: aux,
        }
    }

    /// The paper's configuration: 4096-entry gshare with 2-bit
    /// counters (a 1 KB table).
    pub fn paper() -> Self {
        Self::new(4096, 2, PhtIndexing::Gshare)
    }

    /// Number of table entries.
    pub fn entries(&self) -> usize {
        self.table.len()
    }

    /// Index mask: `new` asserts the entry count is a power of two,
    /// so `x % entries` is `x & (entries - 1)` — a mask instead of a
    /// division on the per-branch predict/update path.
    #[inline]
    fn index_mask(&self) -> u64 {
        self.table.len() as u64 - 1
    }

    #[inline]
    fn gshare_index(&self, pc: Addr) -> usize {
        ((self.history.value() ^ pc.inst_index()) & self.index_mask()) as usize
    }

    #[inline]
    fn pc_index(&self, pc: Addr) -> usize {
        (pc.inst_index() & self.index_mask()) as usize
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        match self.indexing {
            // Tournament's primary table is gshare indexed.
            PhtIndexing::Gshare | PhtIndexing::Tournament => self.gshare_index(pc),
            PhtIndexing::GlobalOnly => (self.history.value() & self.index_mask()) as usize,
            PhtIndexing::Bimodal => self.pc_index(pc),
        }
    }
}

impl DirectionPredictor for Pht {
    fn predict(&self, pc: Addr) -> bool {
        match (self.indexing, &self.second, &self.chooser) {
            (PhtIndexing::Tournament, Some(second), Some(chooser)) => {
                let bi = self.pc_index(pc);
                if chooser.predict_taken(bi) {
                    self.table.predict_taken(self.gshare_index(pc))
                } else {
                    second.predict_taken(bi)
                }
            }
            _ => self.table.predict_taken(self.index(pc)),
        }
    }

    fn update(&mut self, pc: Addr, taken: bool) {
        if self.indexing == PhtIndexing::Tournament {
            let gi = self.gshare_index(pc);
            let bi = self.pc_index(pc);
            let g_correct = self.table.predict_taken(gi) == taken;
            let b_correct = self.second.as_ref().is_some_and(|t| t.predict_taken(bi)) == taken;
            self.table.update(gi, taken);
            if let Some(t) = self.second.as_mut() {
                t.update(bi, taken);
            }
            // Train the chooser only when the components disagree.
            if g_correct != b_correct {
                if let Some(t) = self.chooser.as_mut() {
                    t.update(bi, g_correct);
                }
            }
        } else {
            let i = self.index(pc);
            self.table.update(i, taken);
        }
        self.history.push(taken);
    }

    fn name(&self) -> &'static str {
        match self.indexing {
            PhtIndexing::Gshare => "gshare",
            PhtIndexing::GlobalOnly => "global",
            PhtIndexing::Bimodal => "bimodal",
            PhtIndexing::Tournament => "tournament",
        }
    }
}

/// Static direction prediction, the baseline for branches that miss
/// every dynamic structure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StaticPolicy {
    /// Always predict taken.
    AlwaysTaken,
    /// Always predict not-taken.
    AlwaysNotTaken,
    /// Backward taken, forward not-taken (loop heuristic). Requires
    /// the branch target, so this policy is handled by comparing
    /// target and pc at the call site via [`StaticPredictor::with_target`].
    BackwardTaken,
}

/// A stateless direction predictor.
#[derive(Debug, Clone, Copy)]
pub struct StaticPredictor {
    policy: StaticPolicy,
}

impl StaticPredictor {
    /// A predictor with the given policy.
    pub fn new(policy: StaticPolicy) -> Self {
        StaticPredictor { policy }
    }

    /// Prediction when the taken target is known (needed for
    /// [`StaticPolicy::BackwardTaken`]).
    pub fn with_target(&self, pc: Addr, target: Addr) -> bool {
        match self.policy {
            StaticPolicy::AlwaysTaken => true,
            StaticPolicy::AlwaysNotTaken => false,
            StaticPolicy::BackwardTaken => target <= pc,
        }
    }
}

impl DirectionPredictor for StaticPredictor {
    fn predict(&self, _pc: Addr) -> bool {
        match self.policy {
            StaticPolicy::AlwaysTaken => true,
            // Without a target, treat BTFN as not-taken.
            StaticPolicy::AlwaysNotTaken | StaticPolicy::BackwardTaken => false,
        }
    }

    fn update(&mut self, _pc: Addr, _taken: bool) {}

    fn name(&self) -> &'static str {
        match self.policy {
            StaticPolicy::AlwaysTaken => "static-taken",
            StaticPolicy::AlwaysNotTaken => "static-not-taken",
            StaticPolicy::BackwardTaken => "static-btfn",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_a_bias() {
        let mut p = Pht::paper();
        let pc = Addr::new(0x40);
        // Train past the 12-bit history register's saturation point
        // so the final history context has seen updates.
        for _ in 0..20 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
    }

    #[test]
    fn gshare_learns_an_alternating_pattern() {
        // T N T N ... is mispredicted forever by bimodal, perfectly
        // by gshare once each history context's counter trains.
        let run = |indexing| {
            let mut p = Pht::new(4096, 2, indexing);
            let pc = Addr::new(0x80);
            let mut correct = 0;
            for i in 0..2000 {
                let taken = i % 2 == 0;
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
            correct
        };
        let gshare = run(PhtIndexing::Gshare);
        let bimodal = run(PhtIndexing::Bimodal);
        assert!(gshare > 1900, "gshare correct {gshare}");
        assert!(bimodal < 1200, "bimodal correct {bimodal}");
    }

    #[test]
    fn global_only_ignores_pc() {
        let mut p = Pht::new(16, 2, PhtIndexing::GlobalOnly);
        // Train one pc; with identical history another pc gets the
        // same prediction.
        for _ in 0..4 {
            // keep history constant-ish by pushing the same outcome
            p.update(Addr::new(0x100), true);
        }
        assert_eq!(p.predict(Addr::new(0x100)), p.predict(Addr::new(0x9000)));
    }

    #[test]
    fn static_policies() {
        let t = StaticPredictor::new(StaticPolicy::AlwaysTaken);
        let n = StaticPredictor::new(StaticPolicy::AlwaysNotTaken);
        let b = StaticPredictor::new(StaticPolicy::BackwardTaken);
        let pc = Addr::new(0x1000);
        assert!(t.predict(pc));
        assert!(!n.predict(pc));
        assert!(b.with_target(pc, Addr::new(0x800)), "backward branch predicted taken");
        assert!(!b.with_target(pc, Addr::new(0x2000)), "forward branch predicted not-taken");
    }

    #[test]
    fn tournament_tracks_the_better_component() {
        // Alternating pattern: gshare learns it, bimodal cannot; the
        // tournament must converge to gshare-level accuracy.
        let run = |indexing| {
            let mut p = Pht::new(4096, 2, indexing);
            let pc = Addr::new(0x80);
            let mut correct = 0;
            for i in 0..2000 {
                let taken = i % 2 == 0;
                if p.predict(pc) == taken {
                    correct += 1;
                }
                p.update(pc, taken);
            }
            correct
        };
        let tournament = run(PhtIndexing::Tournament);
        assert!(tournament > 1850, "tournament correct {tournament}");

        // Strongly biased branch: both components learn it; the
        // tournament must too.
        let mut p = Pht::new(4096, 2, PhtIndexing::Tournament);
        let pc = Addr::new(0x40);
        for _ in 0..30 {
            p.update(pc, true);
        }
        assert!(p.predict(pc));
        assert_eq!(p.name(), "tournament");
    }

    #[test]
    fn paper_pht_is_4096_entries() {
        assert_eq!(Pht::paper().entries(), 4096);
        assert_eq!(Pht::paper().name(), "gshare");
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_entries_panics() {
        let _ = Pht::new(1000, 2, PhtIndexing::Gshare);
    }
}
