//! Return-address stack.

use nls_trace::Addr;

/// A circular return-address stack (RAS).
///
/// Both architectures in the paper use a 32-entry return stack
/// (after Kaeli & Emma) to predict procedure returns. The stack is
/// circular: pushing beyond capacity silently overwrites the oldest
/// entry, so call chains deeper than the stack mispredict the
/// outermost returns — exactly the overflow behaviour of the
/// hardware structure.
///
/// # Examples
///
/// ```
/// use nls_predictors::ReturnStack;
/// use nls_trace::Addr;
///
/// let mut ras = ReturnStack::new(32);
/// ras.push(Addr::new(0x104));
/// ras.push(Addr::new(0x204));
/// assert_eq!(ras.pop(), Some(Addr::new(0x204)));
/// assert_eq!(ras.pop(), Some(Addr::new(0x104)));
/// assert_eq!(ras.pop(), None); // empty: no prediction
/// ```
#[derive(Debug, Clone)]
pub struct ReturnStack {
    slots: Vec<Addr>,
    top: usize,
    live: usize,
}

impl ReturnStack {
    /// A stack with `capacity` entries.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on spec constants at construction, before any trace byte
        assert!(capacity > 0, "return stack capacity must be positive");
        ReturnStack { slots: vec![Addr::new(0); capacity], top: 0, live: 0 }
    }

    /// The paper's 32-entry configuration.
    pub fn paper() -> Self {
        Self::new(32)
    }

    /// Pushes a return address (on a call). Overwrites the oldest
    /// entry when full.
    pub fn push(&mut self, addr: Addr) {
        self.top = (self.top + 1) % self.slots.len().max(1);
        if let Some(slot) = self.slots.get_mut(self.top) {
            *slot = addr;
        }
        self.live = (self.live + 1).min(self.slots.len());
    }

    /// Pops the predicted return address (on a return), or `None` if
    /// the stack has underflowed — in which case the return has no
    /// prediction and will mispredict.
    pub fn pop(&mut self) -> Option<Addr> {
        if self.live == 0 {
            return None;
        }
        let a = self.slots.get(self.top).copied()?;
        let len = self.slots.len().max(1);
        self.top = (self.top + len - 1) % len;
        self.live -= 1;
        Some(a)
    }

    /// The top entry without popping.
    pub fn peek(&self) -> Option<Addr> {
        if self.live > 0 {
            self.slots.get(self.top).copied()
        } else {
            None
        }
    }

    /// Number of live entries (saturates at capacity).
    pub fn depth(&self) -> usize {
        self.live
    }

    /// The stack capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lifo_order() {
        let mut s = ReturnStack::new(8);
        for i in 1..=5u64 {
            s.push(Addr::new(i * 4));
        }
        for i in (1..=5u64).rev() {
            assert_eq!(s.pop(), Some(Addr::new(i * 4)));
        }
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn overflow_wraps_and_corrupts_oldest() {
        let mut s = ReturnStack::new(4);
        for i in 1..=6u64 {
            s.push(Addr::new(i * 4));
        }
        // The four newest survive.
        assert_eq!(s.pop(), Some(Addr::new(24)));
        assert_eq!(s.pop(), Some(Addr::new(20)));
        assert_eq!(s.pop(), Some(Addr::new(16)));
        assert_eq!(s.pop(), Some(Addr::new(12)));
        // Entries 1 and 2 were overwritten; depth saturated at 4.
        assert_eq!(s.pop(), None);
    }

    #[test]
    fn peek_does_not_pop() {
        let mut s = ReturnStack::new(4);
        s.push(Addr::new(0x10));
        assert_eq!(s.peek(), Some(Addr::new(0x10)));
        assert_eq!(s.depth(), 1);
        assert_eq!(s.pop(), Some(Addr::new(0x10)));
        assert_eq!(s.peek(), None);
    }

    #[test]
    fn paper_stack_is_32_deep() {
        assert_eq!(ReturnStack::paper().capacity(), 32);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _ = ReturnStack::new(0);
    }
}
