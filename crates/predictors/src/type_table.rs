//! Instruction-type prediction table.
//!
//! The NLS architecture assumes each instruction can be identified
//! as a branch during the fetch stage (§4). When the ISA encoding
//! has no such predecode bit, the paper points out the information
//! "can be stored in the instruction cache or an instruction type
//! prediction table" (after Calder & Grunwald 1994). This is that
//! table: a tag-less bit-per-entry buffer indexed by the fetch
//! address, trained at decode.

use nls_trace::Addr;

/// A tag-less direct-mapped is-this-a-branch predictor.
///
/// # Examples
///
/// ```
/// use nls_predictors::BranchTypeTable;
/// use nls_trace::Addr;
///
/// let mut t = BranchTypeTable::new(1024);
/// let pc = Addr::new(0x400);
/// assert!(!t.predict_branch(pc)); // cold: predict non-branch
/// t.train(pc, true);
/// assert!(t.predict_branch(pc));
/// ```
#[derive(Debug, Clone)]
pub struct BranchTypeTable {
    bits: Vec<bool>,
}

impl BranchTypeTable {
    /// A table with `entries` one-bit predictors, all predicting
    /// "not a branch".
    ///
    /// # Panics
    ///
    /// Panics unless `entries` is a power of two.
    pub fn new(entries: usize) -> Self {
        assert!(entries.is_power_of_two(), "type table entries must be a power of two");
        BranchTypeTable { bits: vec![false; entries] }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.bits.len()
    }

    /// Whether the table is empty (never true: size >= 1).
    pub fn is_empty(&self) -> bool {
        self.bits.is_empty()
    }

    #[inline]
    fn index(&self, pc: Addr) -> usize {
        (pc.inst_index() % self.bits.len() as u64) as usize
    }

    /// Fetch-stage prediction: is the instruction at `pc` a branch?
    #[inline]
    pub fn predict_branch(&self, pc: Addr) -> bool {
        self.bits.get(self.index(pc)).copied().unwrap_or(false)
    }

    /// Decode-stage training with the instruction's true class.
    #[inline]
    pub fn train(&mut self, pc: Addr, is_branch: bool) {
        let i = self.index(pc);
        if let Some(bit) = self.bits.get_mut(i) {
            *bit = is_branch;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn learns_and_unlearns() {
        let mut t = BranchTypeTable::new(64);
        let pc = Addr::from_inst_index(7);
        t.train(pc, true);
        assert!(t.predict_branch(pc));
        t.train(pc, false);
        assert!(!t.predict_branch(pc));
    }

    #[test]
    fn tagless_aliasing() {
        let mut t = BranchTypeTable::new(64);
        let a = Addr::from_inst_index(5);
        let b = Addr::from_inst_index(5 + 64);
        t.train(a, true);
        assert!(t.predict_branch(b), "aliased addresses share the bit");
    }

    #[test]
    fn distinct_slots_independent() {
        let mut t = BranchTypeTable::new(64);
        t.train(Addr::from_inst_index(1), true);
        assert!(!t.predict_branch(Addr::from_inst_index(2)));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_panics() {
        let _ = BranchTypeTable::new(1000);
    }
}
