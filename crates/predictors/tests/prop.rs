//! Property tests for the prediction structures, each checked
//! against a trivially-correct reference model.

use std::collections::HashMap;

use proptest::prelude::*;

use nls_predictors::{
    Btb, BtbConfig, DirectionPredictor, GlobalHistory, LinePointer, NlsEntry, NlsTable, Pht,
    PhtIndexing, ReturnStack, SaturatingCounter,
};
use nls_trace::{Addr, BreakKind};

proptest! {
    #[test]
    fn counter_stays_in_range_and_tracks_sum(bits in 1u8..=4, updates in prop::collection::vec(any::<bool>(), 0..200)) {
        let mut c = SaturatingCounter::new(bits);
        let max = c.max();
        // Reference: clamped integer.
        let mut reference = i32::from(max / 2);
        for &t in &updates {
            c.update(t);
            reference = (reference + if t { 1 } else { -1 }).clamp(0, i32::from(max));
            prop_assert_eq!(i32::from(c.value()), reference);
            prop_assert!(c.value() <= max);
            prop_assert_eq!(c.predict_taken(), c.value() > max / 2);
        }
    }

    #[test]
    fn history_equals_bit_replay(bits in 1u8..=16, outcomes in prop::collection::vec(any::<bool>(), 0..64)) {
        let mut g = GlobalHistory::new(bits);
        for &t in &outcomes {
            g.push(t);
        }
        let mut expected = 0u64;
        for &t in &outcomes {
            expected = ((expected << 1) | u64::from(t)) & ((1u64 << bits) - 1);
        }
        prop_assert_eq!(g.value(), expected);
    }

    #[test]
    fn ras_matches_a_bounded_stack(ops in prop::collection::vec(prop_oneof![
        (1u64..10_000).prop_map(|a| Some(Addr::from_inst_index(a))),
        Just(None),
    ], 0..300), cap in 1usize..40) {
        let mut ras = ReturnStack::new(cap);
        // Reference: a Vec where pushing past capacity drops the
        // *oldest* element.
        let mut reference: Vec<Addr> = Vec::new();
        for op in ops {
            match op {
                Some(addr) => {
                    ras.push(addr);
                    if reference.len() == cap {
                        reference.remove(0);
                    }
                    reference.push(addr);
                }
                None => {
                    let got = ras.pop();
                    let want = reference.pop();
                    prop_assert_eq!(got, want);
                }
            }
            prop_assert_eq!(ras.depth(), reference.len());
            prop_assert_eq!(ras.peek(), reference.last().copied());
        }
    }

    #[test]
    fn nls_table_matches_a_hashmap(entries_log in 3u32..8, ops in prop::collection::vec(
        (0u64..500, any::<bool>(), 0u32..64, 0u8..4, 0u8..8), 0..300
    )) {
        let entries = 1usize << entries_log;
        let mut table = NlsTable::new(entries);
        let mut reference: HashMap<u64, NlsEntry> = HashMap::new();
        for (pc_idx, taken, set, way, inst) in ops {
            let pc = Addr::from_inst_index(pc_idx);
            let slot = pc_idx % entries as u64;
            let ptr = LinePointer { set, way, inst };
            table.update(pc, BreakKind::Conditional, taken, Some(ptr));
            let e = reference.entry(slot).or_default();
            e.update(BreakKind::Conditional, taken, Some(ptr));
            prop_assert_eq!(table.lookup(pc), *e);
        }
        prop_assert!(table.occupancy() <= entries);
    }

    #[test]
    fn btb_never_exceeds_capacity_and_finds_what_it_stored(
        entries in prop_oneof![Just(16usize), Just(64), Just(128)],
        assoc in prop_oneof![Just(1u32), Just(2), Just(4)],
        pcs in prop::collection::vec(0u64..2000, 1..300)
    ) {
        let mut btb = Btb::new(BtbConfig::new(entries, assoc));
        for &i in &pcs {
            let pc = Addr::from_inst_index(i);
            btb.insert(pc, pc.offset(4), BreakKind::Call);
            // An entry just inserted is always found with its target.
            let e = btb.probe(pc).expect("just inserted");
            prop_assert_eq!(e.target, pc.offset(4));
            prop_assert!(btb.occupancy() <= entries);
        }
    }

    #[test]
    fn pht_is_deterministic_and_total(indexing in prop_oneof![
        Just(PhtIndexing::Gshare), Just(PhtIndexing::GlobalOnly), Just(PhtIndexing::Bimodal)
    ], ops in prop::collection::vec((0u64..4096, any::<bool>()), 0..400)) {
        let mut a = Pht::new(1024, 2, indexing);
        let mut b = Pht::new(1024, 2, indexing);
        for (pc_idx, taken) in ops {
            let pc = Addr::from_inst_index(pc_idx);
            prop_assert_eq!(a.predict(pc), b.predict(pc));
            a.update(pc, taken);
            b.update(pc, taken);
        }
    }

    #[test]
    fn line_pointer_locate_is_inverse_of_points_to(
        addrs in prop::collection::vec(0u64..2048, 1..100)
    ) {
        use nls_icache::{CacheConfig, InstructionCache};
        let mut cache = InstructionCache::new(CacheConfig::paper(8, 2));
        for &i in &addrs {
            let addr = Addr::new(i * 4);
            cache.access(addr);
            let ptr = LinePointer::locate(addr, &cache).expect("just accessed");
            prop_assert!(ptr.points_to(addr, &cache));
        }
    }
}
