//! Instruction addresses.
//!
//! The paper simulates a machine with fixed 4-byte instructions and
//! 32-byte instruction-cache lines. [`Addr`] is a newtype over `u64`
//! so that instruction addresses cannot be confused with line
//! indices, set numbers, or plain counters anywhere in the
//! simulator.

use std::fmt;

/// Size of one instruction in bytes (the paper simulates a RISC ISA
/// with fixed 4-byte instructions).
pub const INST_BYTES: u64 = 4;

/// An instruction address (byte address, 4-byte aligned).
///
/// # Examples
///
/// ```
/// use nls_trace::Addr;
///
/// let pc = Addr::from_inst_index(3);
/// assert_eq!(pc.as_u64(), 12);
/// assert_eq!(pc.next(), Addr::from_inst_index(4));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address from a raw byte address.
    ///
    /// # Panics
    ///
    /// Panics if `byte_addr` is not aligned to [`INST_BYTES`].
    #[inline]
    pub fn new(byte_addr: u64) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on malformed addresses; decoders validate alignment first
        assert!(
            byte_addr.is_multiple_of(INST_BYTES),
            "instruction address {byte_addr:#x} is not 4-byte aligned"
        );
        Addr(byte_addr)
    }

    /// Creates an address from an instruction index (`index * 4`).
    #[inline]
    pub fn from_inst_index(index: u64) -> Self {
        Addr(index * INST_BYTES)
    }

    /// The raw byte address.
    #[inline]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// The instruction index (`byte_addr / 4`).
    #[inline]
    pub fn inst_index(self) -> u64 {
        self.0 / INST_BYTES
    }

    /// The address of the sequentially following instruction.
    #[inline]
    #[must_use]
    pub fn next(self) -> Self {
        Addr(self.0 + INST_BYTES)
    }

    /// The address `n` instructions after `self`.
    #[inline]
    #[must_use]
    pub fn offset(self, n: u64) -> Self {
        Addr(self.0 + n * INST_BYTES)
    }

    /// The cache-line index of this address for `line_bytes`-byte lines
    /// and a cache holding `num_lines` line frames per way.
    ///
    /// This is the low-order "line" portion of the address that an NLS
    /// predictor stores.
    #[inline]
    pub fn line_index(self, line_bytes: u64, num_lines: u64) -> u64 {
        (self.0 / line_bytes) % num_lines
    }

    /// The tag of this address for the given cache geometry: the
    /// high-order bits above the set-index and line-offset bits.
    #[inline]
    pub fn tag(self, line_bytes: u64, num_lines: u64) -> u64 {
        (self.0 / line_bytes) / num_lines
    }

    /// The offset of this instruction within its cache line, in
    /// instructions (0..line_bytes/4).
    #[inline]
    pub fn offset_in_line(self, line_bytes: u64) -> u64 {
        (self.0 % line_bytes) / INST_BYTES
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#010x}", self.0)
    }
}

impl fmt::LowerHex for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::LowerHex::fmt(&self.0, f)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let a = Addr::new(0x1000);
        assert_eq!(a.as_u64(), 0x1000);
        assert_eq!(a.inst_index(), 0x400);
        assert_eq!(Addr::from_inst_index(0x400), a);
    }

    #[test]
    #[should_panic(expected = "not 4-byte aligned")]
    fn misaligned_panics() {
        let _ = Addr::new(0x1001);
    }

    #[test]
    fn next_and_offset() {
        let a = Addr::new(16);
        assert_eq!(a.next(), Addr::new(20));
        assert_eq!(a.offset(4), Addr::new(32));
        assert_eq!(a.offset(0), a);
    }

    #[test]
    fn line_geometry() {
        // 32-byte lines, 256 line frames (an 8 KB direct-mapped cache).
        let a = Addr::new(0x2004);
        assert_eq!(a.offset_in_line(32), 1);
        assert_eq!(a.line_index(32, 256), (0x2004 / 32) % 256);
        assert_eq!(a.tag(32, 256), (0x2004 / 32) / 256);
    }

    #[test]
    fn line_index_wraps_at_cache_size() {
        let lines = 256u64;
        let a = Addr::new(32 * lines * 3 + 64); // three cache-sizes up
        let b = Addr::new(64);
        assert_eq!(a.line_index(32, lines), b.line_index(32, lines));
        assert_ne!(a.tag(32, lines), b.tag(32, lines));
    }

    #[test]
    fn display_formats_hex() {
        assert_eq!(Addr::new(0x1000).to_string(), "0x00001000");
        assert_eq!(format!("{:x}", Addr::new(0x1000)), "1000");
    }
}
