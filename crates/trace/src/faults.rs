//! Deterministic fault injection for trace files.
//!
//! Robustness claims are only as good as the corruption they were
//! tested against. This module produces *seeded, reproducible*
//! corruptions of encoded `NLST` byte streams — byte flips,
//! truncations and record duplications — so the corruption-fuzz
//! suites can replay the exact same hostile inputs on every run and
//! a failing seed can be quoted in a bug report.
//!
//! The generator is a self-contained splitmix64 so fault plans stay
//! stable across RNG-crate upgrades: a corruption regression test
//! must never change behaviour because a dependency re-tuned its
//! stream.
//!
//! # Examples
//!
//! ```
//! use nls_trace::faults::{Fault, FaultInjector};
//! use nls_trace::{write_trace, Addr, TraceRecord};
//!
//! let mut data = Vec::new();
//! write_trace(&mut data, vec![TraceRecord::sequential(Addr::new(0x100))]).unwrap();
//! let pristine = data.clone();
//! let fault = FaultInjector::new(7).any_fault(data.len());
//! fault.apply(&mut data);
//! assert_ne!(data, pristine, "every sampled fault changes the bytes");
//! ```

use std::time::Duration;

use crate::file::{TRACE_HEADER_BYTES, TRACE_RECORD_BYTES};
use crate::TraceRecord;

/// One concrete corruption of an encoded trace byte stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// XOR the byte at `offset` with `mask` (`mask != 0`, so the
    /// byte always changes).
    ByteFlip {
        /// Byte offset into the encoded stream.
        offset: usize,
        /// Non-zero XOR mask.
        mask: u8,
    },
    /// Cut the stream down to its first `keep` bytes.
    Truncate {
        /// Bytes to keep.
        keep: usize,
    },
    /// Re-insert a copy of record `index` directly after itself,
    /// shifting the rest of the body. The header count is *not*
    /// updated — the duplicate displaces the tail, modelling a
    /// storage layer that repeated a block.
    DuplicateRecord {
        /// Zero-based record index to duplicate.
        index: u64,
    },
}

impl Fault {
    /// Applies the fault to `data` in place. Out-of-range offsets
    /// and indices clamp to the stream (applying to an empty stream
    /// is a no-op), so a fault plan sampled for one trace can be
    /// replayed on a shorter one.
    pub fn apply(&self, data: &mut Vec<u8>) {
        match *self {
            Fault::ByteFlip { offset, mask } => {
                let Some(at) = data.len().checked_sub(1) else {
                    return;
                };
                if let Some(byte) = data.get_mut(offset.min(at)) {
                    *byte ^= mask.max(1);
                }
            }
            Fault::Truncate { keep } => {
                data.truncate(keep.min(data.len()));
            }
            Fault::DuplicateRecord { index } => {
                let body = data.len().saturating_sub(TRACE_HEADER_BYTES);
                let records = body / TRACE_RECORD_BYTES;
                if records == 0 {
                    return;
                }
                let at = (index as usize).min(records - 1);
                let start = TRACE_HEADER_BYTES + at * TRACE_RECORD_BYTES;
                let Some(frame) = data.get(start..start + TRACE_RECORD_BYTES) else {
                    return;
                };
                let frame: Vec<u8> = frame.to_vec();
                let insert_at = start + TRACE_RECORD_BYTES;
                data.splice(insert_at..insert_at, frame);
            }
        }
    }
}

/// A seeded fault sampler (splitmix64).
///
/// Identical seeds produce identical fault sequences forever; the
/// stream does not depend on any external RNG crate.
#[derive(Debug, Clone)]
pub struct FaultInjector {
    state: u64,
}

impl FaultInjector {
    /// A sampler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        FaultInjector { state: seed }
    }

    /// The next raw 64-bit sample (splitmix64 step).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// A uniform sample in `0..bound` (`bound > 0`).
    fn below(&mut self, bound: usize) -> usize {
        debug_assert!(bound > 0, "bound must be positive");
        (self.next_u64() % bound as u64) as usize
    }

    /// A byte flip somewhere in a stream of `len` bytes.
    pub fn byte_flip(&mut self, len: usize) -> Fault {
        let offset = if len == 0 { 0 } else { self.below(len) };
        let mask = (self.next_u64() as u8).max(1);
        Fault::ByteFlip { offset, mask }
    }

    /// A truncation of a stream of `len` bytes to a strictly shorter
    /// prefix.
    pub fn truncation(&mut self, len: usize) -> Fault {
        let keep = if len == 0 { 0 } else { self.below(len) };
        Fault::Truncate { keep }
    }

    /// A duplication of one record of a stream of `len` bytes.
    pub fn duplication(&mut self, len: usize) -> Fault {
        let records = len.saturating_sub(TRACE_HEADER_BYTES) / TRACE_RECORD_BYTES;
        let index = if records == 0 { 0 } else { self.below(records) as u64 };
        Fault::DuplicateRecord { index }
    }

    /// A fault of any kind, weighted towards byte flips (the common
    /// real-world corruption).
    pub fn any_fault(&mut self, len: usize) -> Fault {
        match self.below(4) {
            0 => self.truncation(len),
            1 => self.duplication(len),
            _ => self.byte_flip(len),
        }
    }
}

/// One fault injected *while a trace is being consumed*, as opposed
/// to the at-rest byte corruptions of [`Fault`].
///
/// Runtime faults model the hostile half of production I/O: a read
/// that stalls (slow disk, cold NFS page, throttled volume) and a
/// read that fails outright mid-stream. Both trigger after a given
/// number of records have been yielded, so a plan is meaningful
/// independent of byte-level encoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RuntimeFault {
    /// Block the reader for `millis` before yielding record
    /// `after_records` (zero-based): deadline pressure without
    /// changing the data.
    ReadStall {
        /// Records yielded before the stall hits.
        after_records: u64,
        /// Stall length in milliseconds.
        millis: u64,
    },
    /// Fail the read before yielding record `after_records`. The
    /// stream yields one `Err` and then fuses: a broken transport
    /// does not resume.
    IoError {
        /// Records yielded before the error hits.
        after_records: u64,
    },
    /// SIGKILL worker process `victim` of a multi-process sweep,
    /// `after_millis` of wall clock into the run — the fault a work
    /// ledger's lease/reclamation protocol exists to absorb. A
    /// process-level fault: [`ChaosStream`] ignores it (nothing
    /// happens at the record level), the soak orchestrator executes
    /// it against its worker pool.
    WorkerKill {
        /// Zero-based index of the worker to kill.
        victim: u64,
        /// Milliseconds after sweep start at which the kill fires.
        after_millis: u64,
    },
    /// Open a connection to a server under test, send a *partial*
    /// request, then hold the socket open for `hold_ms` without
    /// finishing it — the slow-loris shape the server's io-timeout
    /// exists to absorb. A socket-level fault: [`ChaosStream`]
    /// ignores it, the server soak orchestrator executes it with
    /// real connections.
    ClientStall {
        /// Milliseconds after drill start at which the client
        /// connects.
        after_millis: u64,
        /// Milliseconds the half-written request is held open.
        hold_ms: u64,
    },
}

impl RuntimeFault {
    /// The trigger point the fault sorts by: a record count for
    /// stream faults, milliseconds of wall clock for process faults.
    /// Plans mix units only within their own kind ([`ChaosScheduler`]
    /// plans stream faults and worker kills separately).
    pub fn trigger_at(&self) -> u64 {
        match *self {
            RuntimeFault::ReadStall { after_records, .. }
            | RuntimeFault::IoError { after_records } => after_records,
            RuntimeFault::WorkerKill { after_millis, .. }
            | RuntimeFault::ClientStall { after_millis, .. } => after_millis,
        }
    }
}

/// A seeded planner for [`RuntimeFault`]s (same splitmix64 core as
/// [`FaultInjector`]): identical seeds produce identical chaos plans
/// forever, so a failing soak seed can be quoted in a bug report and
/// replayed exactly.
#[derive(Debug, Clone)]
pub struct ChaosScheduler {
    rng: FaultInjector,
}

impl ChaosScheduler {
    /// A scheduler seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        ChaosScheduler { rng: FaultInjector::new(seed) }
    }

    /// A stall of `1..=max_millis` ms somewhere in the first
    /// `trace_len` records.
    pub fn read_stall(&mut self, trace_len: u64, max_millis: u64) -> RuntimeFault {
        RuntimeFault::ReadStall {
            after_records: self.position(trace_len),
            millis: 1 + self.rng.next_u64() % max_millis.max(1),
        }
    }

    /// An I/O failure somewhere in the first `trace_len` records.
    pub fn io_error(&mut self, trace_len: u64) -> RuntimeFault {
        RuntimeFault::IoError { after_records: self.position(trace_len) }
    }

    /// A plan of `faults` runtime faults, sorted by trigger point,
    /// weighted towards stalls (the common real-world event). At
    /// most one `IoError` is planned — the stream fuses after the
    /// first, so later ones would be dead weight.
    pub fn plan(
        &mut self,
        trace_len: u64,
        faults: usize,
        max_millis: u64,
    ) -> Vec<RuntimeFault> {
        // nls-lint: allow(unchecked-capacity): `faults` is a caller-chosen plan size, single digits in every harness
        let mut out = Vec::with_capacity(faults);
        let mut failed = false;
        for _ in 0..faults {
            let fault = if !failed && self.rng.below(4) == 0 {
                failed = true;
                self.io_error(trace_len)
            } else {
                self.read_stall(trace_len, max_millis)
            };
            out.push(fault);
        }
        out.sort_by_key(RuntimeFault::trigger_at);
        out
    }

    /// A kill of one of `workers` worker processes (never worker 0,
    /// so a multi-process sweep always keeps one survivor to reclaim
    /// the victims' cells) within the first `max_delay_ms` of the
    /// run.
    pub fn worker_kill(&mut self, workers: u64, max_delay_ms: u64) -> RuntimeFault {
        let victim = if workers > 1 { 1 + self.rng.next_u64() % (workers - 1) } else { 0 };
        RuntimeFault::WorkerKill {
            victim,
            after_millis: self.rng.next_u64() % max_delay_ms.max(1),
        }
    }

    /// A plan of `kills` seeded [`RuntimeFault::WorkerKill`]s against
    /// a pool of `workers`, sorted by firing time. Like every chaos
    /// plan, identical seeds produce identical kill schedules.
    pub fn kill_plan(
        &mut self,
        workers: u64,
        kills: usize,
        max_delay_ms: u64,
    ) -> Vec<RuntimeFault> {
        // nls-lint: allow(unchecked-capacity): `kills` is a caller-chosen plan size, single digits in every harness
        let mut out = Vec::with_capacity(kills);
        for _ in 0..kills {
            out.push(self.worker_kill(workers, max_delay_ms));
        }
        out.sort_by_key(RuntimeFault::trigger_at);
        out
    }

    /// A plan of `stalls` seeded [`RuntimeFault::ClientStall`]s:
    /// each connects within the first `window_ms` of the drill and
    /// holds its half-written request for `1..=max_hold_ms`. Sorted
    /// by connect time, reproducible from the seed like every plan.
    pub fn stall_plan(
        &mut self,
        stalls: usize,
        window_ms: u64,
        max_hold_ms: u64,
    ) -> Vec<RuntimeFault> {
        // nls-lint: allow(unchecked-capacity): `stalls` is a caller-chosen plan size, single digits in every harness
        let mut out = Vec::with_capacity(stalls);
        for _ in 0..stalls {
            out.push(RuntimeFault::ClientStall {
                after_millis: self.rng.next_u64() % window_ms.max(1),
                hold_ms: 1 + self.rng.next_u64() % max_hold_ms.max(1),
            });
        }
        out.sort_by_key(RuntimeFault::trigger_at);
        out
    }

    /// A uniform seeded sample in `0..bound` (`bound` of 0 is read
    /// as 1), for orchestrators that need reproducible choices —
    /// e.g. which corpus request a flood client fires next.
    pub fn pick(&mut self, bound: u64) -> u64 {
        self.rng.next_u64() % bound.max(1)
    }

    fn position(&mut self, trace_len: u64) -> u64 {
        if trace_len == 0 {
            0
        } else {
            self.rng.next_u64() % trace_len
        }
    }
}

/// A trace-record iterator with a [`RuntimeFault`] plan spliced into
/// its read path.
///
/// Wraps any `Iterator<Item = TraceRecord>` (a decoded buffer, a
/// [`crate::Walker`], …) and yields `Result<TraceRecord,
/// std::io::Error>`: stalls sleep in-line before the affected
/// record, an `IoError` yields exactly one `Err` and then the
/// stream fuses to `None`.
///
/// # Examples
///
/// ```
/// use nls_trace::faults::{ChaosStream, RuntimeFault};
/// use nls_trace::{Addr, TraceRecord};
///
/// let records = vec![TraceRecord::sequential(Addr::new(0x100)); 4];
/// let plan = vec![RuntimeFault::IoError { after_records: 2 }];
/// let got: Vec<_> = ChaosStream::new(records.into_iter(), plan).collect();
/// assert_eq!(got.len(), 3, "two records, one error, then fused");
/// assert!(got[2].is_err());
/// ```
#[derive(Debug)]
pub struct ChaosStream<I> {
    inner: I,
    plan: Vec<RuntimeFault>,
    next_fault: usize,
    yielded: u64,
    failed: bool,
}

impl<I> ChaosStream<I> {
    /// Wraps `inner` with `plan` (sorted internally; order of equal
    /// trigger points is preserved).
    pub fn new(inner: I, mut plan: Vec<RuntimeFault>) -> Self {
        plan.sort_by_key(RuntimeFault::trigger_at);
        ChaosStream { inner, plan, next_fault: 0, yielded: 0, failed: false }
    }
}

impl<I: Iterator<Item = TraceRecord>> Iterator for ChaosStream<I> {
    type Item = Result<TraceRecord, std::io::Error>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.failed {
            return None;
        }
        while let Some(fault) = self.plan.get(self.next_fault) {
            if fault.trigger_at() > self.yielded {
                break;
            }
            self.next_fault += 1;
            match *fault {
                RuntimeFault::ReadStall { millis, .. } => {
                    std::thread::sleep(Duration::from_millis(millis));
                }
                RuntimeFault::IoError { .. } => {
                    self.failed = true;
                    return Some(Err(std::io::Error::other(
                        "injected chaos fault: read failed",
                    )));
                }
                // Process- and socket-level faults do nothing at the
                // record level; the soak orchestrators own them.
                RuntimeFault::WorkerKill { .. } | RuntimeFault::ClientStall { .. } => {}
            }
        }
        let record = self.inner.next()?;
        self.yielded += 1;
        Some(Ok(record))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(bytes: usize) -> Vec<u8> {
        (0..bytes).map(|i| i as u8).collect()
    }

    #[test]
    fn same_seed_same_faults() {
        let mut a = FaultInjector::new(42);
        let mut b = FaultInjector::new(42);
        for _ in 0..64 {
            assert_eq!(a.any_fault(1000), b.any_fault(1000));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = FaultInjector::new(1);
        let mut b = FaultInjector::new(2);
        let same = (0..32).filter(|_| a.any_fault(1000) == b.any_fault(1000)).count();
        assert!(same < 32, "independent seeds must not produce identical plans");
    }

    #[test]
    fn byte_flip_always_changes_one_byte() {
        let mut inj = FaultInjector::new(7);
        for _ in 0..100 {
            let mut data = stream(100);
            let before = data.clone();
            inj.byte_flip(data.len()).apply(&mut data);
            let diffs = before.iter().zip(&data).filter(|(a, b)| a != b).count();
            assert_eq!(diffs, 1);
        }
    }

    #[test]
    fn truncation_strictly_shrinks() {
        let mut inj = FaultInjector::new(7);
        for _ in 0..100 {
            let mut data = stream(100);
            inj.truncation(data.len()).apply(&mut data);
            assert!(data.len() < 100);
        }
    }

    #[test]
    fn duplication_grows_by_one_record() {
        let mut inj = FaultInjector::new(7);
        let len = TRACE_HEADER_BYTES + 5 * TRACE_RECORD_BYTES;
        let mut data = stream(len);
        inj.duplication(data.len()).apply(&mut data);
        assert_eq!(data.len(), len + TRACE_RECORD_BYTES);
    }

    #[test]
    fn duplication_repeats_the_frame_in_place() {
        let len = TRACE_HEADER_BYTES + 3 * TRACE_RECORD_BYTES;
        let mut data = stream(len);
        Fault::DuplicateRecord { index: 1 }.apply(&mut data);
        let first = TRACE_HEADER_BYTES + TRACE_RECORD_BYTES;
        let copy = first + TRACE_RECORD_BYTES;
        assert_eq!(
            data[first..first + TRACE_RECORD_BYTES],
            data[copy..copy + TRACE_RECORD_BYTES]
        );
    }

    #[test]
    fn faults_are_noops_on_empty_streams() {
        for fault in [
            Fault::ByteFlip { offset: 10, mask: 0xff },
            Fault::Truncate { keep: 10 },
            Fault::DuplicateRecord { index: 3 },
        ] {
            let mut data = Vec::new();
            fault.apply(&mut data);
            assert!(data.is_empty());
        }
    }

    #[test]
    fn chaos_plans_are_reproducible() {
        let a = ChaosScheduler::new(99).plan(10_000, 8, 5);
        let b = ChaosScheduler::new(99).plan(10_000, 8, 5);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].trigger_at() <= w[1].trigger_at()), "plan is sorted");
        let errors = a.iter().filter(|f| matches!(f, RuntimeFault::IoError { .. })).count();
        assert!(errors <= 1, "at most one I/O failure per plan");
    }

    #[test]
    fn kill_plans_are_reproducible_and_spare_worker_zero() {
        let a = ChaosScheduler::new(7).kill_plan(4, 6, 300);
        let b = ChaosScheduler::new(7).kill_plan(4, 6, 300);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].trigger_at() <= w[1].trigger_at()), "plan is sorted");
        for fault in &a {
            match fault {
                RuntimeFault::WorkerKill { victim, after_millis } => {
                    assert!((1..4).contains(victim), "worker 0 must always survive");
                    assert!(*after_millis < 300);
                }
                other => panic!("kill plans hold only WorkerKill faults, got {other:?}"),
            }
        }
    }

    #[test]
    fn stall_plans_are_reproducible_and_bounded() {
        let a = ChaosScheduler::new(5).stall_plan(6, 200, 400);
        let b = ChaosScheduler::new(5).stall_plan(6, 200, 400);
        assert_eq!(a, b);
        assert!(a.windows(2).all(|w| w[0].trigger_at() <= w[1].trigger_at()), "plan is sorted");
        for fault in &a {
            match fault {
                RuntimeFault::ClientStall { after_millis, hold_ms } => {
                    assert!(*after_millis < 200);
                    assert!((1..=400).contains(hold_ms));
                }
                other => panic!("stall plans hold only ClientStall faults, got {other:?}"),
            }
        }
    }

    #[test]
    fn client_stalls_pass_through_a_chaos_stream() {
        let records: Vec<_> = (0..5)
            .map(|i| crate::TraceRecord::sequential(crate::Addr::new(0x100 + i * 4)))
            .collect();
        let plan = vec![RuntimeFault::ClientStall { after_millis: 0, hold_ms: 10 }];
        let got: Result<Vec<_>, _> =
            ChaosStream::new(records.clone().into_iter(), plan).collect();
        assert_eq!(got.unwrap(), records, "socket faults never touch the record stream");
    }

    #[test]
    fn picks_are_reproducible_and_in_range() {
        let mut a = ChaosScheduler::new(3);
        let mut b = ChaosScheduler::new(3);
        for _ in 0..64 {
            let x = a.pick(7);
            assert_eq!(x, b.pick(7));
            assert!(x < 7);
        }
        assert_eq!(a.pick(0), 0, "zero bound degrades to the only choice");
    }

    #[test]
    fn single_worker_kill_plan_targets_the_only_worker() {
        // Degenerate fleet: with one worker there is no survivor to
        // spare, and the caller gets victim 0 back unrounded.
        match ChaosScheduler::new(1).worker_kill(1, 100) {
            RuntimeFault::WorkerKill { victim, .. } => assert_eq!(victim, 0),
            other => panic!("want WorkerKill, got {other:?}"),
        }
    }

    #[test]
    fn worker_kills_pass_through_a_chaos_stream() {
        let records: Vec<_> = (0..5)
            .map(|i| crate::TraceRecord::sequential(crate::Addr::new(0x100 + i * 4)))
            .collect();
        let plan = vec![RuntimeFault::WorkerKill { victim: 1, after_millis: 0 }];
        let got: Result<Vec<_>, _> =
            ChaosStream::new(records.clone().into_iter(), plan).collect();
        assert_eq!(got.unwrap(), records, "process faults never touch the record stream");
    }

    #[test]
    fn chaos_stream_without_faults_is_transparent() {
        let records: Vec<_> = (0..5)
            .map(|i| crate::TraceRecord::sequential(crate::Addr::new(0x100 + i * 4)))
            .collect();
        let got: Result<Vec<_>, _> =
            ChaosStream::new(records.clone().into_iter(), Vec::new()).collect();
        assert_eq!(got.unwrap(), records);
    }

    #[test]
    fn stalls_delay_but_never_change_records() {
        let records: Vec<_> = (0..5)
            .map(|i| crate::TraceRecord::sequential(crate::Addr::new(0x100 + i * 4)))
            .collect();
        let plan = vec![RuntimeFault::ReadStall { after_records: 2, millis: 1 }];
        let got: Result<Vec<_>, _> =
            ChaosStream::new(records.clone().into_iter(), plan).collect();
        assert_eq!(got.unwrap(), records);
    }

    #[test]
    fn io_error_yields_once_then_fuses() {
        let records: Vec<_> = (0..5)
            .map(|i| crate::TraceRecord::sequential(crate::Addr::new(0x100 + i * 4)))
            .collect();
        let plan = vec![
            RuntimeFault::IoError { after_records: 3 },
            RuntimeFault::ReadStall { after_records: 4, millis: 1 },
        ];
        let mut stream = ChaosStream::new(records.into_iter(), plan);
        assert!(stream.by_ref().take(3).all(|r| r.is_ok()));
        assert!(stream.next().unwrap().is_err());
        assert!(stream.next().is_none(), "a broken transport does not resume");
        assert!(stream.next().is_none());
    }

    #[test]
    fn out_of_range_faults_clamp() {
        let len = TRACE_HEADER_BYTES + 2 * TRACE_RECORD_BYTES;
        let mut data = stream(len);
        Fault::ByteFlip { offset: 10_000, mask: 1 }.apply(&mut data);
        assert_eq!(data.len(), len);
        Fault::DuplicateRecord { index: 10_000 }.apply(&mut data);
        assert_eq!(data.len(), len + TRACE_RECORD_BYTES);
    }
}
