//! Binary trace file I/O.
//!
//! The paper used ATOM to instrument programs on the fly rather than
//! storing traces. For users who *do* have address traces (from
//! their own instrumentation), this module defines a compact binary
//! format so recorded traces can be replayed through the simulator:
//!
//! ```text
//! magic "NLST" | u32 version | u64 record count | records...
//! record: u8 kind-tag | u8 taken | u64 pc | u64 target   (little endian)
//! ```
//!
//! # Streaming and fault tolerance
//!
//! Production replay runs live or die on long ingestion of huge
//! address streams, so the primary interface is *streaming*:
//!
//! * [`TraceReader`] decodes one fixed-size record frame at a time
//!   (bounded memory regardless of the header's claimed count) and
//!   yields `Result<TraceRecord, TraceFileError>`. A configurable
//!   [`RecoveryPolicy`] decides whether a corrupt frame fails the
//!   stream, is skipped (up to a bound), or truncates the trace at
//!   the first error.
//! * [`TraceWriter`] streams records out through a buffered writer
//!   and back-patches the header count on [`TraceWriter::finish`],
//!   so the full record set is never materialised.
//! * [`write_trace_atomic`] additionally writes through a temporary
//!   sibling file, fsyncs, and renames into place, so an interrupted
//!   generation never leaves a truncated-but-valid-looking file.
//!
//! [`read_trace`] and [`write_trace`] remain as convenience wrappers
//! for small traces and tests.

use std::fs::File;
use std::io::{self, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use crate::addr::Addr;
use crate::record::{BreakKind, InstClass, TraceRecord};

const MAGIC: &[u8; 4] = b"NLST";
const VERSION: u32 = 1;

/// Size of the fixed file header (magic + version + record count).
pub const TRACE_HEADER_BYTES: usize = 16;
/// Size of one encoded record frame.
pub const TRACE_RECORD_BYTES: usize = 18;

/// Upper bound on the `Vec` preallocation made from the (untrusted)
/// header count, so a hostile 8-byte header cannot OOM the process.
const PREALLOC_RECORD_CAP: u64 = 1 << 20;

/// Errors produced when decoding a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `NLST` magic.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u32),
    /// The header is truncated or claims an implausible record count.
    BadHeader(String),
    /// A record had an invalid kind tag or inconsistent fields.
    BadRecord(String),
    /// More corrupt records than [`RecoveryPolicy::SkipRecord`]
    /// allows.
    TooCorrupt {
        /// Corrupt records encountered (including the one over the
        /// limit).
        skipped: u64,
        /// The configured `max_skips` bound.
        limit: u64,
    },
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "i/o error: {e}"),
            TraceFileError::BadMagic(m) => write!(f, "bad magic {m:?}, expected \"NLST\""),
            TraceFileError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceFileError::BadHeader(why) => write!(f, "malformed header: {why}"),
            TraceFileError::BadRecord(why) => write!(f, "malformed record: {why}"),
            TraceFileError::TooCorrupt { skipped, limit } => {
                write!(f, "{skipped} corrupt records exceed the skip limit of {limit}")
            }
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

/// What a [`TraceReader`] does when it hits a corrupt record frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RecoveryPolicy {
    /// Yield the error and end the stream (the default).
    #[default]
    Fail,
    /// Drop the corrupt frame and continue with the next one, up to
    /// `max_skips` frames; one more fails the stream with
    /// [`TraceFileError::TooCorrupt`]. Frames are fixed-size, so
    /// alignment is preserved across skips.
    SkipRecord {
        /// Maximum corrupt frames to drop before giving up.
        max_skips: u64,
    },
    /// End the stream cleanly at the first corrupt or truncated
    /// frame, keeping everything decoded so far.
    TruncateAtError,
}

fn kind_tag(class: InstClass) -> u8 {
    match class {
        InstClass::Sequential => 0,
        InstClass::Break(BreakKind::Conditional) => 1,
        InstClass::Break(BreakKind::Unconditional) => 2,
        InstClass::Break(BreakKind::IndirectJump) => 3,
        InstClass::Break(BreakKind::Call) => 4,
        InstClass::Break(BreakKind::Return) => 5,
    }
}

fn tag_kind(tag: u8) -> Result<InstClass, TraceFileError> {
    Ok(match tag {
        0 => InstClass::Sequential,
        1 => InstClass::Break(BreakKind::Conditional),
        2 => InstClass::Break(BreakKind::Unconditional),
        3 => InstClass::Break(BreakKind::IndirectJump),
        4 => InstClass::Break(BreakKind::Call),
        5 => InstClass::Break(BreakKind::Return),
        t => return Err(TraceFileError::BadRecord(format!("kind tag {t}"))),
    })
}

fn encode_record(r: &TraceRecord) -> [u8; TRACE_RECORD_BYTES] {
    let mut frame = [0u8; TRACE_RECORD_BYTES];
    frame[0] = kind_tag(r.class);
    frame[1] = u8::from(r.taken);
    frame[2..10].copy_from_slice(&r.pc.as_u64().to_le_bytes());
    frame[10..18].copy_from_slice(&r.target.as_u64().to_le_bytes());
    frame
}

fn decode_record(frame: &[u8; TRACE_RECORD_BYTES]) -> Result<TraceRecord, TraceFileError> {
    // Full array destructuring: the frame layout is checked by the
    // compiler, so decoding has no panic path at all.
    let [tag, taken, p0, p1, p2, p3, p4, p5, p6, p7, t0, t1, t2, t3, t4, t5, t6, t7] = *frame;
    let class = tag_kind(tag)?;
    let taken = taken != 0;
    let pc = u64::from_le_bytes([p0, p1, p2, p3, p4, p5, p6, p7]);
    let target = u64::from_le_bytes([t0, t1, t2, t3, t4, t5, t6, t7]);
    if pc % 4 != 0 || target % 4 != 0 {
        return Err(TraceFileError::BadRecord(format!("misaligned pc {pc:#x}")));
    }
    Ok(match class {
        InstClass::Sequential => TraceRecord::sequential(Addr::new(pc)),
        InstClass::Break(kind) => {
            if !taken && kind != BreakKind::Conditional {
                return Err(TraceFileError::BadRecord(
                    "not-taken non-conditional break".into(),
                ));
            }
            TraceRecord::branch(Addr::new(pc), kind, taken, Addr::new(target))
        }
    })
}

/// A streaming `NLST` decoder: an iterator of
/// `Result<TraceRecord, TraceFileError>` holding one record frame in
/// memory at a time.
///
/// The header is validated on construction; records are decoded
/// lazily, so a hostile header count can never force a large
/// allocation. After iteration, [`records_skipped`] and
/// [`truncated`] report how much recovery the policy performed.
///
/// [`records_skipped`]: TraceReader::records_skipped
/// [`truncated`]: TraceReader::truncated
///
/// # Examples
///
/// ```
/// use nls_trace::{write_trace, Addr, RecoveryPolicy, TraceReader, TraceRecord};
///
/// let mut buf = Vec::new();
/// write_trace(&mut buf, vec![TraceRecord::sequential(Addr::new(0x100))]).unwrap();
/// let reader = TraceReader::with_policy(&buf[..], RecoveryPolicy::Fail).unwrap();
/// let records: Result<Vec<_>, _> = reader.collect();
/// assert_eq!(records.unwrap().len(), 1);
/// ```
#[derive(Debug)]
pub struct TraceReader<R: Read> {
    src: R,
    policy: RecoveryPolicy,
    declared: u64,
    consumed: u64,
    skipped: u64,
    truncated: bool,
    done: bool,
}

impl<R: Read> TraceReader<R> {
    /// Opens a reader with the [`RecoveryPolicy::Fail`] policy.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a truncated header, bad magic, an
    /// unsupported version, or an implausible record count.
    pub fn new(src: R) -> Result<Self, TraceFileError> {
        Self::with_policy(src, RecoveryPolicy::Fail)
    }

    /// Opens a reader with an explicit recovery policy.
    ///
    /// # Errors
    ///
    /// Fails on I/O errors, a truncated header, bad magic, an
    /// unsupported version, or an implausible record count. Header
    /// errors are never recoverable: without a trusted frame origin
    /// there is nothing to resynchronise on.
    pub fn with_policy(mut src: R, policy: RecoveryPolicy) -> Result<Self, TraceFileError> {
        let mut header = [0u8; TRACE_HEADER_BYTES];
        src.read_exact(&mut header).map_err(|e| {
            if e.kind() == io::ErrorKind::UnexpectedEof {
                TraceFileError::BadHeader("truncated header".into())
            } else {
                TraceFileError::Io(e)
            }
        })?;
        // Destructure the fixed header layout outright: no slicing,
        // no conversion that could ever panic.
        let [m0, m1, m2, m3, v0, v1, v2, v3, c0, c1, c2, c3, c4, c5, c6, c7] = header;
        let magic = [m0, m1, m2, m3];
        if &magic != MAGIC {
            return Err(TraceFileError::BadMagic(magic));
        }
        let version = u32::from_le_bytes([v0, v1, v2, v3]);
        if version != VERSION {
            return Err(TraceFileError::BadVersion(version));
        }
        let declared = u64::from_le_bytes([c0, c1, c2, c3, c4, c5, c6, c7]);
        // The body length is `declared * TRACE_RECORD_BYTES`; a count
        // that overflows that product can never describe real data.
        if declared.checked_mul(TRACE_RECORD_BYTES as u64).is_none() {
            return Err(TraceFileError::BadHeader(format!(
                "implausible record count {declared}"
            )));
        }
        Ok(TraceReader {
            src,
            policy,
            declared,
            consumed: 0,
            skipped: 0,
            truncated: false,
            done: false,
        })
    }

    /// The record count claimed by the header (untrusted until the
    /// stream has been fully consumed).
    pub fn declared_records(&self) -> u64 {
        self.declared
    }

    /// Corrupt frames dropped so far under
    /// [`RecoveryPolicy::SkipRecord`].
    pub fn records_skipped(&self) -> u64 {
        self.skipped
    }

    /// Whether [`RecoveryPolicy::TruncateAtError`] cut the stream
    /// short of the declared count.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// The active recovery policy.
    pub fn policy(&self) -> RecoveryPolicy {
        self.policy
    }
}

impl TraceReader<io::BufReader<File>> {
    /// Opens a trace file from disk under `policy`, buffered.
    ///
    /// This is the supported way to get trace bytes off a path:
    /// callers outside `crates/trace` must not open trace files
    /// themselves (enforced by `nls-lint`'s `fs-trace-read` rule),
    /// so corruption always flows through the recovery layer.
    ///
    /// # Errors
    ///
    /// Fails with [`TraceFileError::Io`] (naming the path) when the
    /// file cannot be opened, or any header error from
    /// [`TraceReader::with_policy`].
    pub fn open<P: AsRef<Path>>(
        path: P,
        policy: RecoveryPolicy,
    ) -> Result<Self, TraceFileError> {
        let path = path.as_ref();
        let file = File::open(path).map_err(|e| {
            TraceFileError::Io(io::Error::new(
                e.kind(),
                format!("cannot open {}: {e}", path.display()),
            ))
        })?;
        Self::with_policy(io::BufReader::new(file), policy)
    }
}

impl<R: Read> Iterator for TraceReader<R> {
    type Item = Result<TraceRecord, TraceFileError>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.done {
            return None;
        }
        loop {
            if self.consumed >= self.declared {
                self.done = true;
                return None;
            }
            let mut frame = [0u8; TRACE_RECORD_BYTES];
            if let Err(e) = self.src.read_exact(&mut frame) {
                self.done = true;
                if e.kind() != io::ErrorKind::UnexpectedEof {
                    return Some(Err(TraceFileError::Io(e)));
                }
                // The body ended before the declared count. Skipping
                // cannot help — there are no more bytes.
                return match self.policy {
                    RecoveryPolicy::TruncateAtError => {
                        self.truncated = true;
                        None
                    }
                    _ => Some(Err(TraceFileError::BadRecord(format!(
                        "body truncated after {} of {} records",
                        self.consumed, self.declared
                    )))),
                };
            }
            self.consumed += 1;
            match decode_record(&frame) {
                Ok(r) => return Some(Ok(r)),
                Err(e) => match self.policy {
                    RecoveryPolicy::Fail => {
                        self.done = true;
                        return Some(Err(e));
                    }
                    RecoveryPolicy::TruncateAtError => {
                        self.done = true;
                        self.truncated = true;
                        return None;
                    }
                    RecoveryPolicy::SkipRecord { max_skips } => {
                        self.skipped += 1;
                        if self.skipped > max_skips {
                            self.done = true;
                            return Some(Err(TraceFileError::TooCorrupt {
                                skipped: self.skipped,
                                limit: max_skips,
                            }));
                        }
                    }
                },
            }
        }
    }
}

/// A streaming `NLST` encoder over any seekable writer.
///
/// Records are buffered through a [`BufWriter`] and the header's
/// record count is back-patched by [`finish`], so arbitrarily long
/// traces are written in bounded memory.
///
/// [`finish`]: TraceWriter::finish
#[derive(Debug)]
pub struct TraceWriter<W: Write + Seek> {
    dst: BufWriter<W>,
    written: u64,
}

impl<W: Write + Seek> TraceWriter<W> {
    /// Starts a trace stream on `w`, writing a header with a
    /// placeholder count of zero.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn new(w: W) -> Result<Self, TraceFileError> {
        let mut dst = BufWriter::new(w);
        dst.write_all(MAGIC)?;
        dst.write_all(&VERSION.to_le_bytes())?;
        dst.write_all(&0u64.to_le_bytes())?;
        Ok(TraceWriter { dst, written: 0 })
    }

    /// Appends one record.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write(&mut self, r: &TraceRecord) -> Result<(), TraceFileError> {
        self.dst.write_all(&encode_record(r))?;
        self.written += 1;
        Ok(())
    }

    /// Appends every record from an iterator; returns how many were
    /// written by this call.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn write_records<I>(&mut self, records: I) -> Result<u64, TraceFileError>
    where
        I: IntoIterator<Item = TraceRecord>,
    {
        let before = self.written;
        for r in records {
            self.write(&r)?;
        }
        Ok(self.written - before)
    }

    /// Records written so far.
    pub fn records_written(&self) -> u64 {
        self.written
    }

    /// Flushes, back-patches the header count, and returns the inner
    /// writer plus the total record count. Until this runs, the file
    /// reads as an empty trace — a half-written stream is never
    /// mistaken for a complete one.
    ///
    /// # Errors
    ///
    /// Returns any underlying I/O error.
    pub fn finish(mut self) -> Result<(W, u64), TraceFileError> {
        self.dst.seek(SeekFrom::Start(8))?;
        self.dst.write_all(&self.written.to_le_bytes())?;
        self.dst.flush()?;
        let w = self.dst.into_inner().map_err(|e| TraceFileError::Io(e.into_error()))?;
        Ok((w, self.written))
    }
}

/// Writes `records` to `w` in the `NLST` binary format. Pass a
/// `&mut` reference if you need the writer back.
///
/// Buffers the encoded body in memory (the writer need not be
/// seekable); use [`TraceWriter`] or [`write_trace_atomic`] for
/// bounded-memory streaming.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_trace<W: Write, I>(mut w: W, records: I) -> Result<u64, TraceFileError>
where
    I: IntoIterator<Item = TraceRecord>,
{
    let mut body = Vec::new();
    let mut n: u64 = 0;
    for r in records {
        body.extend_from_slice(&encode_record(&r));
        n += 1;
    }
    w.write_all(MAGIC)?;
    w.write_all(&VERSION.to_le_bytes())?;
    w.write_all(&n.to_le_bytes())?;
    w.write_all(&body)?;
    Ok(n)
}

/// Streams `records` into the file at `path` crash-safely: the
/// trace is written through a [`TraceWriter`] to a temporary sibling
/// (`<path>.tmp`), fsynced, and atomically renamed into place. An
/// interrupted generation leaves either the old file or no file —
/// never a truncated-but-valid-looking trace.
///
/// # Errors
///
/// Returns any underlying I/O error; the temporary file is removed
/// on failure.
pub fn write_trace_atomic<P, I>(path: P, records: I) -> Result<u64, TraceFileError>
where
    P: AsRef<Path>,
    I: IntoIterator<Item = TraceRecord>,
{
    let path = path.as_ref();
    let tmp = tmp_sibling(path);
    match stream_to_file(&tmp, records) {
        Ok(n) => {
            std::fs::rename(&tmp, path)?;
            sync_parent_dir(path);
            Ok(n)
        }
        Err(e) => {
            let _ = std::fs::remove_file(&tmp);
            Err(e)
        }
    }
}

fn tmp_sibling(path: &Path) -> PathBuf {
    let mut os = path.as_os_str().to_os_string();
    os.push(".tmp");
    PathBuf::from(os)
}

fn stream_to_file<I>(tmp: &Path, records: I) -> Result<u64, TraceFileError>
where
    I: IntoIterator<Item = TraceRecord>,
{
    let file = File::create(tmp)?;
    let mut w = TraceWriter::new(file)?;
    w.write_records(records)?;
    let (file, n) = w.finish()?;
    file.sync_all()?;
    Ok(n)
}

/// Fsyncs the directory containing `path` so the rename itself is
/// durable (best effort; ignored on platforms without directory
/// handles).
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    {
        let parent = match path.parent() {
            Some(p) if !p.as_os_str().is_empty() => p,
            _ => Path::new("."),
        };
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

/// Reads a complete `NLST` trace from `r` with the strict
/// [`RecoveryPolicy::Fail`] policy. Pass a `&mut` reference if you
/// need the reader back.
///
/// # Errors
///
/// Returns [`TraceFileError`] on I/O failure, bad magic/version, or
/// malformed records (unknown kind tag, misaligned address, or a
/// not-taken non-conditional break).
pub fn read_trace<R: Read>(r: R) -> Result<Vec<TraceRecord>, TraceFileError> {
    read_trace_with(r, RecoveryPolicy::Fail)
}

/// Reads a complete `NLST` trace from `r` under `policy`, collecting
/// into a `Vec`. The preallocation is capped independently of the
/// header's claimed count, so hostile headers cannot OOM the
/// process.
///
/// # Errors
///
/// Returns [`TraceFileError`] on I/O failure, header corruption, or
/// any record error the policy does not absorb.
pub fn read_trace_with<R: Read>(
    r: R,
    policy: RecoveryPolicy,
) -> Result<Vec<TraceRecord>, TraceFileError> {
    let reader = TraceReader::with_policy(r, policy)?;
    let mut out =
        Vec::with_capacity(reader.declared_records().min(PREALLOC_RECORD_CAP) as usize);
    for rec in reader {
        out.push(rec?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::sequential(Addr::new(0x100)),
            TraceRecord::branch(
                Addr::new(0x104),
                BreakKind::Conditional,
                false,
                Addr::new(0x200),
            ),
            TraceRecord::branch(Addr::new(0x108), BreakKind::Call, true, Addr::new(0x400)),
            TraceRecord::branch(Addr::new(0x400), BreakKind::Return, true, Addr::new(0x10c)),
            TraceRecord::branch(
                Addr::new(0x10c),
                BreakKind::IndirectJump,
                true,
                Addr::new(0x300),
            ),
        ]
    }

    fn encoded_sample() -> Vec<u8> {
        let mut buf = Vec::new();
        write_trace(&mut buf, sample()).unwrap();
        buf
    }

    #[test]
    fn round_trip() {
        let buf = encoded_sample();
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = encoded_sample();
        buf[0] = b'X';
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadMagic(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = encoded_sample();
        buf[4] = 99;
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = encoded_sample();
        buf.truncate(buf.len() - 1);
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadRecord(_))));
    }

    #[test]
    fn rejects_truncated_header() {
        let buf = encoded_sample();
        assert!(matches!(
            read_trace(&buf[..TRACE_HEADER_BYTES - 1]),
            Err(TraceFileError::BadHeader(_))
        ));
    }

    #[test]
    fn rejects_bad_kind_tag() {
        let mut buf = encoded_sample();
        buf[TRACE_HEADER_BYTES] = 42; // first record's kind tag
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadRecord(_))));
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, Vec::new()).unwrap();
        assert!(read_trace(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn hostile_count_does_not_allocate() {
        // A header claiming u64::MAX records must be rejected before
        // any allocation is attempted.
        let mut buf = encoded_sample();
        buf[8..16].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadHeader(_))));

        // A large-but-not-overflowing count streams and then fails on
        // the missing body instead of preallocating.
        let mut buf = encoded_sample();
        buf[8..16].copy_from_slice(&(1u64 << 40).to_le_bytes());
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadRecord(_))));
    }

    #[test]
    fn skip_policy_drops_corrupt_frames() {
        let mut buf = encoded_sample();
        buf[TRACE_HEADER_BYTES] = 42; // corrupt the first record only
        let reader =
            TraceReader::with_policy(&buf[..], RecoveryPolicy::SkipRecord { max_skips: 3 })
                .unwrap();
        let records: Vec<_> = reader.map(|r| r.unwrap()).collect();
        assert_eq!(records, sample()[1..].to_vec());
    }

    #[test]
    fn skip_policy_bounds_corruption() {
        let mut buf = encoded_sample();
        for i in 0..3 {
            buf[TRACE_HEADER_BYTES + i * TRACE_RECORD_BYTES] = 42;
        }
        let out = read_trace_with(&buf[..], RecoveryPolicy::SkipRecord { max_skips: 2 });
        assert!(matches!(out, Err(TraceFileError::TooCorrupt { skipped: 3, limit: 2 })));
    }

    #[test]
    fn truncate_policy_keeps_good_prefix() {
        let mut buf = encoded_sample();
        buf[TRACE_HEADER_BYTES + 2 * TRACE_RECORD_BYTES] = 42; // third record
        let mut reader =
            TraceReader::with_policy(&buf[..], RecoveryPolicy::TruncateAtError).unwrap();
        let records: Vec<_> = reader.by_ref().map(|r| r.unwrap()).collect();
        assert_eq!(records, sample()[..2].to_vec());
        assert!(reader.truncated());
    }

    #[test]
    fn truncate_policy_absorbs_short_body() {
        let mut buf = encoded_sample();
        buf.truncate(buf.len() - 1);
        let records = read_trace_with(&buf[..], RecoveryPolicy::TruncateAtError).unwrap();
        assert_eq!(records, sample()[..4].to_vec());
    }

    #[test]
    fn reader_reports_declared_and_skipped() {
        let mut buf = encoded_sample();
        buf[TRACE_HEADER_BYTES] = 42;
        let mut reader =
            TraceReader::with_policy(&buf[..], RecoveryPolicy::SkipRecord { max_skips: 8 })
                .unwrap();
        assert_eq!(reader.declared_records(), 5);
        let n = reader.by_ref().filter(|r| r.is_ok()).count();
        assert_eq!(n, 4);
        assert_eq!(reader.records_skipped(), 1);
        assert!(!reader.truncated());
    }

    #[test]
    fn streaming_writer_round_trips() {
        let mut cursor = io::Cursor::new(Vec::new());
        let mut w = TraceWriter::new(&mut cursor).unwrap();
        for r in sample() {
            w.write(&r).unwrap();
        }
        assert_eq!(w.records_written(), 5);
        let (_, n) = w.finish().unwrap();
        assert_eq!(n, 5);
        let buf = cursor.into_inner();
        assert_eq!(read_trace(&buf[..]).unwrap(), sample());
    }

    #[test]
    fn unfinished_stream_reads_as_empty() {
        // Without finish() the header still says zero records — a
        // crashed writer never yields a plausible-looking trace.
        let mut cursor = io::Cursor::new(Vec::new());
        let mut w = TraceWriter::new(&mut cursor).unwrap();
        w.write(&TraceRecord::sequential(Addr::new(0x100))).unwrap();
        w.dst.flush().unwrap();
        drop(w);
        let buf = cursor.into_inner();
        assert!(read_trace(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn atomic_write_round_trips_and_cleans_up() {
        let path = std::env::temp_dir().join("nls_file_test_atomic.nlst");
        let n = write_trace_atomic(&path, sample()).unwrap();
        assert_eq!(n, 5);
        let back = read_trace(File::open(&path).unwrap()).unwrap();
        assert_eq!(back, sample());
        assert!(!tmp_sibling(&path).exists(), "temporary sibling must be renamed away");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceFileError::BadVersion(7);
        assert!(e.to_string().contains('7'));
        let e = TraceFileError::TooCorrupt { skipped: 9, limit: 8 };
        assert!(e.to_string().contains('9'));
    }
}
