//! Binary trace file I/O.
//!
//! The paper used ATOM to instrument programs on the fly rather than
//! storing traces. For users who *do* have address traces (from
//! their own instrumentation), this module defines a compact binary
//! format so recorded traces can be replayed through the simulator:
//!
//! ```text
//! magic "NLST" | u32 version | u64 record count | records...
//! record: u8 kind-tag | u8 taken | u64 pc | u64 target   (little endian)
//! ```

use std::io::{self, Read, Write};

use bytes::{Buf, BufMut};

use crate::addr::Addr;
use crate::record::{BreakKind, InstClass, TraceRecord};

const MAGIC: &[u8; 4] = b"NLST";
const VERSION: u32 = 1;
const RECORD_BYTES: usize = 18;

/// Errors produced when decoding a trace file.
#[derive(Debug)]
pub enum TraceFileError {
    /// Underlying I/O failure.
    Io(io::Error),
    /// The stream does not start with the `NLST` magic.
    BadMagic([u8; 4]),
    /// Unsupported format version.
    BadVersion(u32),
    /// A record had an invalid kind tag or inconsistent fields.
    BadRecord(String),
}

impl std::fmt::Display for TraceFileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceFileError::Io(e) => write!(f, "i/o error: {e}"),
            TraceFileError::BadMagic(m) => write!(f, "bad magic {m:?}, expected \"NLST\""),
            TraceFileError::BadVersion(v) => write!(f, "unsupported trace version {v}"),
            TraceFileError::BadRecord(why) => write!(f, "malformed record: {why}"),
        }
    }
}

impl std::error::Error for TraceFileError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceFileError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<io::Error> for TraceFileError {
    fn from(e: io::Error) -> Self {
        TraceFileError::Io(e)
    }
}

fn kind_tag(class: InstClass) -> u8 {
    match class {
        InstClass::Sequential => 0,
        InstClass::Break(BreakKind::Conditional) => 1,
        InstClass::Break(BreakKind::Unconditional) => 2,
        InstClass::Break(BreakKind::IndirectJump) => 3,
        InstClass::Break(BreakKind::Call) => 4,
        InstClass::Break(BreakKind::Return) => 5,
    }
}

fn tag_kind(tag: u8) -> Result<InstClass, TraceFileError> {
    Ok(match tag {
        0 => InstClass::Sequential,
        1 => InstClass::Break(BreakKind::Conditional),
        2 => InstClass::Break(BreakKind::Unconditional),
        3 => InstClass::Break(BreakKind::IndirectJump),
        4 => InstClass::Break(BreakKind::Call),
        5 => InstClass::Break(BreakKind::Return),
        t => return Err(TraceFileError::BadRecord(format!("kind tag {t}"))),
    })
}

/// Writes `records` to `w` in the `NLST` binary format. Pass a
/// `&mut` reference if you need the writer back.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_trace<W: Write, I>(mut w: W, records: I) -> Result<u64, TraceFileError>
where
    I: IntoIterator<Item = TraceRecord>,
{
    // Buffer records first so we can write an exact count header.
    let records: Vec<TraceRecord> = records.into_iter().collect();
    let mut buf = bytes::BytesMut::with_capacity(16 + RECORD_BYTES * records.len());
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(records.len() as u64);
    for r in &records {
        buf.put_u8(kind_tag(r.class));
        buf.put_u8(u8::from(r.taken));
        buf.put_u64_le(r.pc.as_u64());
        buf.put_u64_le(r.target.as_u64());
    }
    w.write_all(&buf)?;
    Ok(records.len() as u64)
}

/// Reads a complete `NLST` trace from `r`. Pass a `&mut` reference
/// if you need the reader back.
///
/// # Errors
///
/// Returns [`TraceFileError`] on I/O failure, bad magic/version, or
/// malformed records (unknown kind tag, misaligned address, or a
/// not-taken non-conditional break).
pub fn read_trace<R: Read>(mut r: R) -> Result<Vec<TraceRecord>, TraceFileError> {
    let mut raw = Vec::new();
    r.read_to_end(&mut raw)?;
    let mut buf = &raw[..];
    if buf.remaining() < 16 {
        return Err(TraceFileError::BadRecord("truncated header".into()));
    }
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(TraceFileError::BadMagic(magic));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(TraceFileError::BadVersion(version));
    }
    let count = buf.get_u64_le() as usize;
    if buf.remaining() < count * RECORD_BYTES {
        return Err(TraceFileError::BadRecord(format!(
            "expected {count} records, body too short"
        )));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let class = tag_kind(buf.get_u8())?;
        let taken = buf.get_u8() != 0;
        let pc = buf.get_u64_le();
        let target = buf.get_u64_le();
        if pc % 4 != 0 || target % 4 != 0 {
            return Err(TraceFileError::BadRecord(format!("misaligned pc {pc:#x}")));
        }
        let record = match class {
            InstClass::Sequential => TraceRecord::sequential(Addr::new(pc)),
            InstClass::Break(kind) => {
                if !taken && kind != BreakKind::Conditional {
                    return Err(TraceFileError::BadRecord(
                        "not-taken non-conditional break".into(),
                    ));
                }
                TraceRecord::branch(Addr::new(pc), kind, taken, Addr::new(target))
            }
        };
        out.push(record);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<TraceRecord> {
        vec![
            TraceRecord::sequential(Addr::new(0x100)),
            TraceRecord::branch(Addr::new(0x104), BreakKind::Conditional, false, Addr::new(0x200)),
            TraceRecord::branch(Addr::new(0x108), BreakKind::Call, true, Addr::new(0x400)),
            TraceRecord::branch(Addr::new(0x400), BreakKind::Return, true, Addr::new(0x10c)),
            TraceRecord::branch(Addr::new(0x10c), BreakKind::IndirectJump, true, Addr::new(0x300)),
        ]
    }

    #[test]
    fn round_trip() {
        let mut buf = Vec::new();
        let n = write_trace(&mut buf, sample()).unwrap();
        assert_eq!(n, 5);
        let back = read_trace(&buf[..]).unwrap();
        assert_eq!(back, sample());
    }

    #[test]
    fn rejects_bad_magic() {
        let mut buf = Vec::new();
        write_trace(&mut buf, sample()).unwrap();
        buf[0] = b'X';
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadMagic(_))));
    }

    #[test]
    fn rejects_bad_version() {
        let mut buf = Vec::new();
        write_trace(&mut buf, sample()).unwrap();
        buf[4] = 99;
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadVersion(99))));
    }

    #[test]
    fn rejects_truncation() {
        let mut buf = Vec::new();
        write_trace(&mut buf, sample()).unwrap();
        buf.truncate(buf.len() - 1);
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadRecord(_))));
    }

    #[test]
    fn rejects_bad_kind_tag() {
        let mut buf = Vec::new();
        write_trace(&mut buf, sample()).unwrap();
        buf[16] = 42; // first record's kind tag
        assert!(matches!(read_trace(&buf[..]), Err(TraceFileError::BadRecord(_))));
    }

    #[test]
    fn empty_trace_round_trips() {
        let mut buf = Vec::new();
        write_trace(&mut buf, Vec::new()).unwrap();
        assert!(read_trace(&buf[..]).unwrap().is_empty());
    }

    #[test]
    fn error_display_is_informative() {
        let e = TraceFileError::BadVersion(7);
        assert!(e.to_string().contains('7'));
    }
}
