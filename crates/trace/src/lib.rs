//! Instruction traces and synthetic workloads for fetch-prediction
//! studies.
//!
//! This crate supplies the workload side of the NLS reproduction
//! (Calder & Grunwald, *Next Cache Line and Set Prediction*, ISCA
//! 1995):
//!
//! * [`Addr`], [`TraceRecord`], [`BreakKind`] — the trace model: one
//!   record per executed instruction with its control-flow class and
//!   resolved outcome.
//! * [`BenchProfile`] — the six Table 1 program profiles (`doduc`,
//!   `espresso`, `gcc`, `li`, `cfront`, `groff`).
//! * [`synthesize`] / [`Walker`] — build a statistically equivalent
//!   synthetic program for a profile and execute it into a
//!   PC-coherent trace stream.
//! * [`TraceStats`] — re-measure Table 1 columns from any trace.
//! * [`TraceReader`] / [`TraceWriter`] — streaming, bounded-memory
//!   binary trace files with configurable corruption recovery
//!   ([`RecoveryPolicy`]); [`write_trace`] / [`read_trace`] are the
//!   buffered convenience forms.
//! * [`faults`] — deterministic, seeded corruption of encoded
//!   traces for fault-injection testing.
//!
//! # Quick start
//!
//! ```
//! use nls_trace::{BenchProfile, GenConfig, synthesize, TraceStats, Walker};
//!
//! let profile = BenchProfile::espresso();
//! let program = synthesize(&profile, &GenConfig::for_profile(&profile));
//! let mut walker = Walker::new(&program, 42);
//! let stats = TraceStats::from_trace(walker.by_ref().take(100_000));
//! // espresso is branch-dense: roughly one break in six instructions.
//! assert!(stats.pct_breaks() > 8.0);
//! ```

mod addr;
pub mod faults;
mod file;
mod measure;
mod profile;
mod program;
mod record;
mod synth;
mod walker;
mod weights;

pub use addr::{Addr, INST_BYTES};
pub use file::{
    read_trace, read_trace_with, write_trace, write_trace_atomic, RecoveryPolicy,
    TraceFileError, TraceReader, TraceWriter, TRACE_HEADER_BYTES, TRACE_RECORD_BYTES,
};
pub use measure::TraceStats;
pub use profile::{BenchProfile, BreakMix, HotQuantiles};
pub use program::{CondModel, IndirectDispatch, Inst, Procedure, Program};
pub use record::{BreakKind, InstClass, TraceRecord};
pub use synth::{synthesize, GenConfig, Layout, Plan};
pub use walker::{trace_for, Walker};
pub use weights::WeightCurve;
