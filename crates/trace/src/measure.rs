//! Trace measurement: recomputing Table 1 from a trace.
//!
//! [`TraceStats`] accumulates, over any stream of records, exactly
//! the columns the paper reports for its traced programs: break
//! density, hot-branch quantiles (Q-50..Q-100), executed/static site
//! counts, taken rate, and the break-type mix. The `table1` bench
//! binary uses this to print a measured Table 1 next to the paper's.

use std::collections::BTreeMap;

use crate::addr::Addr;
use crate::record::{BreakKind, TraceRecord};

/// Accumulated statistics over a trace.
#[derive(Debug, Clone, Default)]
pub struct TraceStats {
    /// Total instructions seen.
    pub instructions: u64,
    /// Total breaks (control-transfer instructions).
    pub breaks: u64,
    /// Breaks by kind, indexed in [`BreakKind::ALL`] order.
    pub by_kind: [u64; 5],
    /// Taken conditional branches.
    pub cond_taken: u64,
    /// Per-site execution counts for conditional branches. A
    /// `BTreeMap` so every derived figure iterates in address order —
    /// Table 1 must be bit-identical run to run.
    cond_sites: BTreeMap<Addr, u64>,
}

impl TraceStats {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Measures an entire trace in one call.
    pub fn from_trace<I: IntoIterator<Item = TraceRecord>>(trace: I) -> Self {
        let mut s = Self::new();
        for r in trace {
            s.observe(&r);
        }
        s
    }

    /// Feeds one record into the accumulator.
    pub fn observe(&mut self, r: &TraceRecord) {
        self.instructions += 1;
        let Some(kind) = r.class.break_kind() else {
            return;
        };
        self.breaks += 1;
        for (slot, &k) in self.by_kind.iter_mut().zip(BreakKind::ALL.iter()) {
            if k == kind {
                *slot += 1;
            }
        }
        if kind == BreakKind::Conditional {
            if r.taken {
                self.cond_taken += 1;
            }
            *self.cond_sites.entry(r.pc).or_insert(0) += 1;
        }
    }

    /// Percentage of instructions that are breaks (Table 1 "%Breaks").
    pub fn pct_breaks(&self) -> f64 {
        percent(self.breaks, self.instructions)
    }

    /// Percentage of executed conditional branches that were taken.
    pub fn pct_taken(&self) -> f64 {
        percent(self.cond_taken, self.executed_conds())
    }

    /// Total executed conditional branches.
    pub fn executed_conds(&self) -> u64 {
        self.by_kind[0]
    }

    /// Number of distinct conditional branch sites executed
    /// (Table 1 "Q-100").
    pub fn q100(&self) -> usize {
        self.cond_sites.len()
    }

    /// The smallest number of hottest conditional sites covering
    /// `mass` (0..=1) of executed conditional branches; `quantile(0.5)`
    /// is Table 1's Q-50 column.
    pub fn quantile(&self, mass: f64) -> usize {
        let mut counts: Vec<u64> = self.cond_sites.values().copied().collect();
        counts.sort_unstable_by(|a, b| b.cmp(a));
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return 0;
        }
        let need = (mass * total as f64).ceil() as u64;
        let mut acc = 0;
        for (i, c) in counts.iter().enumerate() {
            acc += c;
            if acc >= need {
                return i + 1;
            }
        }
        counts.len()
    }

    /// Break-type mix as percentages of all breaks, in
    /// [`BreakKind::ALL`] order (CBr, IJ, Br, Call, Ret).
    pub fn mix_percent(&self) -> [f64; 5] {
        let mut out = [0.0; 5];
        for (o, &n) in out.iter_mut().zip(&self.by_kind) {
            *o = percent(n, self.breaks);
        }
        out
    }
}

fn percent(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        100.0 * num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceRecord;

    fn cond(pc: u64, taken: bool) -> TraceRecord {
        TraceRecord::branch(Addr::new(pc), BreakKind::Conditional, taken, Addr::new(0x4000))
    }

    #[test]
    fn counts_breaks_and_kinds() {
        let trace = vec![
            TraceRecord::sequential(Addr::new(0)),
            TraceRecord::sequential(Addr::new(4)),
            cond(8, true),
            TraceRecord::branch(Addr::new(0x4000), BreakKind::Call, true, Addr::new(0x8000)),
            TraceRecord::branch(Addr::new(0x8000), BreakKind::Return, true, Addr::new(0x4004)),
        ];
        let s = TraceStats::from_trace(trace);
        assert_eq!(s.instructions, 5);
        assert_eq!(s.breaks, 3);
        assert!((s.pct_breaks() - 60.0).abs() < 1e-9);
        assert_eq!(s.by_kind, [1, 0, 0, 1, 1]);
    }

    #[test]
    fn taken_rate() {
        let s = TraceStats::from_trace(vec![cond(0, true), cond(0, true), cond(4, false)]);
        assert!((s.pct_taken() - 2.0 / 3.0 * 100.0).abs() < 1e-9);
    }

    #[test]
    fn quantiles_over_sites() {
        // Site A: 8 execs, site B: 1, site C: 1.
        let mut trace = vec![cond(0, true); 8];
        trace.push(cond(4, true));
        trace.push(cond(8, true));
        let s = TraceStats::from_trace(trace);
        assert_eq!(s.q100(), 3);
        assert_eq!(s.quantile(0.5), 1); // A alone covers 80 %
        assert_eq!(s.quantile(0.85), 2);
        assert_eq!(s.quantile(1.0), 3);
    }

    #[test]
    fn mix_sums_to_100() {
        let s = TraceStats::from_trace(vec![
            cond(0, true),
            TraceRecord::branch(Addr::new(4), BreakKind::Unconditional, true, Addr::new(64)),
        ]);
        let total: f64 = s.mix_percent().iter().sum();
        assert!((total - 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_is_all_zero() {
        let s = TraceStats::new();
        assert_eq!(s.pct_breaks(), 0.0);
        assert_eq!(s.pct_taken(), 0.0);
        assert_eq!(s.quantile(0.5), 0);
    }
}
