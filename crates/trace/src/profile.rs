//! Benchmark profiles.
//!
//! The paper traces six programs (four from SPEC92 plus two C++
//! programs) with ATOM on a DEC Alpha and reports their branching
//! behaviour in Table 1. Those traces are not available, so this
//! crate regenerates *statistically equivalent* workloads: a
//! [`BenchProfile`] carries every column of Table 1 and the synthetic
//! program builder ([`crate::program`]) realises a program whose
//! dynamic behaviour matches it.
//!
//! The properties that drive the paper's NLS-vs-BTB results are all
//! captured here: break density (`pct_breaks`), the branch-type mix,
//! the number and skew of static conditional branch sites
//! (`static_cond_sites` and the Q-quantiles), and the taken rate.

/// Frequency mix of the five break kinds, as percentages of all
/// breaks (Table 1, last five columns). The five fields sum to ~100.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BreakMix {
    /// % conditional branches.
    pub cond: f64,
    /// % indirect jumps.
    pub indirect: f64,
    /// % unconditional branches.
    pub uncond: f64,
    /// % procedure calls.
    pub call: f64,
    /// % procedure returns.
    pub ret: f64,
}

impl BreakMix {
    /// Sum of the five components (should be close to 100).
    pub fn total(&self) -> f64 {
        self.cond + self.indirect + self.uncond + self.call + self.ret
    }
}

/// Cumulative hot-branch quantiles (Table 1, columns Q-50..Q-100):
/// `q50` static conditional branch sites account for 50 % of all
/// executed conditional branches, and so on. `q100` is the number of
/// sites executed at least once.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HotQuantiles {
    /// Sites covering 50 % of executed conditional branches.
    pub q50: u32,
    /// Sites covering 90 %.
    pub q90: u32,
    /// Sites covering 99 %.
    pub q99: u32,
    /// Sites executed at least once.
    pub q100: u32,
}

/// A benchmark profile: one row of the paper's Table 1.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchProfile {
    /// Short program name (`doduc`, `gcc`, ...).
    pub name: &'static str,
    /// Percentage of executed instructions that are breaks in
    /// control flow (Table 1, "%Breaks").
    pub pct_breaks: f64,
    /// Hot-branch quantiles over static conditional sites.
    pub quantiles: HotQuantiles,
    /// Number of static conditional branch sites in the program
    /// (Table 1, "Static"). `static_cond_sites >= quantiles.q100`;
    /// the difference is never-executed sites.
    pub static_cond_sites: u32,
    /// Percentage of executed conditional branches that are taken.
    pub pct_taken: f64,
    /// Break-type mix.
    pub mix: BreakMix,
}

impl BenchProfile {
    /// Profile of `doduc` (SPEC92 FORTRAN, Monte Carlo simulation):
    /// few branches, extremely skewed (3 sites = 50 % of executions).
    pub fn doduc() -> Self {
        BenchProfile {
            name: "doduc",
            pct_breaks: 8.53,
            quantiles: HotQuantiles { q50: 3, q90: 175, q99: 296, q100: 1447 },
            static_cond_sites: 7073,
            pct_taken: 48.68,
            mix: BreakMix { cond: 81.31, indirect: 0.01, uncond: 4.97, call: 6.86, ret: 6.86 },
        }
    }

    /// Profile of `espresso` (SPEC92 C, logic minimisation): branch
    /// dense but with a small, highly-taken hot set.
    pub fn espresso() -> Self {
        BenchProfile {
            name: "espresso",
            pct_breaks: 17.12,
            quantiles: HotQuantiles { q50: 44, q90: 163, q99: 470, q100: 1737 },
            static_cond_sites: 4568,
            pct_taken: 61.90,
            mix: BreakMix { cond: 93.25, indirect: 0.20, uncond: 1.88, call: 2.29, ret: 2.39 },
        }
    }

    /// Profile of `gcc` (SPEC92 C compiler): very many static branch
    /// sites, high i-cache miss rate, hard-to-predict branches. One
    /// of the three programs the paper highlights as favouring NLS.
    pub fn gcc() -> Self {
        BenchProfile {
            name: "gcc",
            pct_breaks: 15.97,
            quantiles: HotQuantiles { q50: 245, q90: 1612, q99: 3742, q100: 7640 },
            static_cond_sites: 16294,
            pct_taken: 59.42,
            mix: BreakMix { cond: 78.85, indirect: 2.86, uncond: 5.75, call: 6.04, ret: 6.49 },
        }
    }

    /// Profile of `li` (SPEC92 Lisp interpreter): call/return heavy
    /// with a tiny hot branch set.
    pub fn li() -> Self {
        BenchProfile {
            name: "li",
            pct_breaks: 17.67,
            quantiles: HotQuantiles { q50: 16, q90: 52, q99: 127, q100: 556 },
            static_cond_sites: 2428,
            pct_taken: 47.30,
            mix: BreakMix {
                cond: 63.94,
                indirect: 2.24,
                uncond: 7.74,
                call: 12.92,
                ret: 13.16,
            },
        }
    }

    /// Profile of `cfront` (AT&T C++ front end): large static branch
    /// population, high i-cache miss rate.
    pub fn cfront() -> Self {
        BenchProfile {
            name: "cfront",
            pct_breaks: 13.66,
            quantiles: HotQuantiles { q50: 69, q90: 833, q99: 2894, q100: 5644 },
            static_cond_sites: 17565,
            pct_taken: 53.18,
            mix: BreakMix { cond: 73.45, indirect: 2.17, uncond: 6.40, call: 8.72, ret: 9.26 },
        }
    }

    /// Profile of `groff` (C++ ditroff): moderate branch population,
    /// the highest indirect-jump fraction of the six programs.
    pub fn groff() -> Self {
        BenchProfile {
            name: "groff",
            pct_breaks: 16.38,
            quantiles: HotQuantiles { q50: 107, q90: 408, q99: 976, q100: 2889 },
            static_cond_sites: 7434,
            pct_taken: 54.17,
            mix: BreakMix { cond: 66.12, indirect: 4.80, uncond: 7.80, call: 8.77, ret: 12.51 },
        }
    }

    /// All six profiles of Table 1, in the paper's row order.
    pub fn all() -> Vec<BenchProfile> {
        vec![
            Self::doduc(),
            Self::espresso(),
            Self::gcc(),
            Self::li(),
            Self::cfront(),
            Self::groff(),
        ]
    }

    /// Looks up a profile by name (case-insensitive).
    pub fn by_name(name: &str) -> Option<BenchProfile> {
        Self::all().into_iter().find(|p| p.name.eq_ignore_ascii_case(name))
    }

    /// Mean number of sequential instructions between consecutive
    /// breaks implied by `pct_breaks`.
    pub fn mean_gap(&self) -> f64 {
        (100.0 - self.pct_breaks) / self.pct_breaks
    }

    /// The three programs the paper singles out as branch-heavy /
    /// cache-hostile (`gcc`, `cfront`, `groff`).
    pub fn branch_heavy() -> Vec<BenchProfile> {
        vec![Self::gcc(), Self::cfront(), Self::groff()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn six_profiles_match_table1_row_order() {
        let names: Vec<_> = BenchProfile::all().iter().map(|p| p.name).collect();
        assert_eq!(names, ["doduc", "espresso", "gcc", "li", "cfront", "groff"]);
    }

    #[test]
    fn mixes_sum_to_about_100() {
        for p in BenchProfile::all() {
            let t = p.mix.total();
            assert!((t - 100.0).abs() < 0.5, "{}: mix sums to {t}", p.name);
        }
    }

    #[test]
    fn quantiles_are_monotone_and_within_static() {
        for p in BenchProfile::all() {
            let q = p.quantiles;
            assert!(q.q50 <= q.q90 && q.q90 <= q.q99 && q.q99 <= q.q100, "{}", p.name);
            assert!(q.q100 <= p.static_cond_sites, "{}", p.name);
        }
    }

    #[test]
    fn calls_balance_returns_approximately() {
        for p in BenchProfile::all() {
            assert!(
                (p.mix.call - p.mix.ret).abs() < 4.0,
                "{}: calls {} vs returns {}",
                p.name,
                p.mix.call,
                p.mix.ret
            );
        }
    }

    #[test]
    fn lookup_by_name() {
        assert_eq!(BenchProfile::by_name("GCC").unwrap().name, "gcc");
        assert!(BenchProfile::by_name("nonesuch").is_none());
    }

    #[test]
    fn mean_gap_matches_break_density() {
        let p = BenchProfile::doduc();
        let g = p.mean_gap();
        // 8.53 % breaks -> one break every ~11.7 instructions.
        assert!((g - 10.72).abs() < 0.05, "gap {g}");
    }
}
