//! Compiled synthetic programs.
//!
//! A [`Program`] is a set of [`Procedure`]s laid out in a flat
//! address space, each compiled to a vector of [`Inst`]s. The
//! [`crate::walker::Walker`] *executes* a program, so every trace it
//! emits is PC-coherent by construction: the same address always
//! holds the same instruction, conditional branches always have the
//! same taken target, and control flow follows real call/return
//! nesting. That coherence is what lets the instruction cache, BTB
//! and NLS predictors downstream behave as they would on a real
//! instrumented binary.

use crate::addr::Addr;

/// The stochastic outcome model of one conditional branch site.
#[derive(Debug, Clone, PartialEq)]
pub enum CondModel {
    /// Independent per-execution outcomes: taken with probability `p`.
    Bernoulli(f64),
    /// Two-state Markov process: after a taken outcome the branch is
    /// taken again with probability `stay_taken`; after a not-taken
    /// outcome it stays not-taken with probability `stay_not`.
    /// Correlated predictors (gshare) exploit this; bimodal counters
    /// cannot.
    Markov { stay_taken: f64, stay_not: f64 },
    /// A fixed repeating outcome pattern (e.g. a loop with a constant
    /// trip count produces `T T T N` repeating). Perfectly
    /// predictable with enough history.
    Pattern(Vec<bool>),
}

impl CondModel {
    /// Long-run fraction of taken outcomes under this model.
    pub fn taken_rate(&self) -> f64 {
        match self {
            CondModel::Bernoulli(p) => *p,
            CondModel::Markov { stay_taken, stay_not } => {
                // Stationary distribution of the two-state chain.
                let leave_t = 1.0 - stay_taken;
                let leave_n = 1.0 - stay_not;
                if leave_t + leave_n == 0.0 {
                    0.5
                } else {
                    leave_n / (leave_t + leave_n)
                }
            }
            CondModel::Pattern(p) => {
                if p.is_empty() {
                    0.0
                } else {
                    p.iter().filter(|&&b| b).count() as f64 / p.len() as f64
                }
            }
        }
    }
}

/// A multi-way indirect-jump dispatch: target instruction indices
/// (procedure-relative) and their cumulative selection weights.
#[derive(Debug, Clone, PartialEq)]
pub struct IndirectDispatch {
    /// Candidate target indices within the owning procedure.
    pub targets: Vec<u32>,
    /// Cumulative probabilities, same length as `targets`, ending at 1.0.
    pub cumulative: Vec<f64>,
}

impl IndirectDispatch {
    /// Builds a dispatch from unnormalised weights.
    ///
    /// # Panics
    ///
    /// Panics if `targets` and `weights` differ in length, are empty,
    /// or the weights do not sum to a positive value.
    pub fn new(targets: Vec<u32>, weights: &[f64]) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on synthetic-program spec constants at construction
        assert_eq!(targets.len(), weights.len(), "targets/weights mismatch");
        // nls-lint: allow(panic-reach): fail-fast on synthetic-program spec constants at construction
        assert!(!targets.is_empty(), "dispatch needs at least one target");
        let total: f64 = weights.iter().sum();
        // nls-lint: allow(panic-reach): fail-fast on synthetic-program spec constants at construction
        assert!(total > 0.0, "dispatch weights must sum to a positive value");
        let mut acc = 0.0;
        let cumulative = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect::<Vec<_>>();
        IndirectDispatch { targets, cumulative }
    }

    /// Picks a target index for a uniform sample `u` in `[0, 1)`.
    pub fn pick(&self, u: f64) -> u32 {
        let i = self.cumulative.partition_point(|&c| c <= u);
        // Rounding can push the sample past the last bucket; clamp to
        // the final target (0 for a degenerate empty dispatch).
        self.targets.get(i).or_else(|| self.targets.last()).copied().unwrap_or(0)
    }
}

/// One compiled instruction. Branch targets are instruction indices
/// relative to the owning procedure's entry.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// An ordinary (non-break) instruction.
    Seq,
    /// Conditional branch to `target`; outcome sampled from the
    /// global conditional site `site`.
    Cond { target: u32, site: u32 },
    /// Unconditional branch to `target`.
    Uncond { target: u32 },
    /// Direct call to procedure `callee`; execution resumes at the
    /// next instruction after the callee returns.
    Call { callee: u32 },
    /// Procedure return.
    Ret,
    /// Indirect jump through dispatch table `dispatch` (an index into
    /// [`Program::dispatches`]).
    IndirectJump { dispatch: u32 },
}

/// A procedure: a contiguous block of compiled code at `entry`.
#[derive(Debug, Clone, PartialEq)]
pub struct Procedure {
    /// Address of the first instruction.
    pub entry: Addr,
    /// The code, one element per instruction slot.
    pub code: Vec<Inst>,
}

impl Procedure {
    /// The address of instruction slot `idx`.
    #[inline]
    pub fn pc(&self, idx: u32) -> Addr {
        self.entry.offset(u64::from(idx))
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.code.len()
    }

    /// Whether the procedure has no code (never true for built programs).
    pub fn is_empty(&self) -> bool {
        self.code.is_empty()
    }
}

/// A complete synthetic program.
#[derive(Debug, Clone, PartialEq)]
pub struct Program {
    /// All procedures; `procs[main]` is the dispatch driver.
    pub procs: Vec<Procedure>,
    /// Global table of conditional-branch site models; `Inst::Cond`
    /// refers into this by index.
    pub cond_sites: Vec<CondModel>,
    /// Global table of indirect dispatches.
    pub dispatches: Vec<IndirectDispatch>,
    /// Index of the driver procedure execution starts in.
    pub main: u32,
}

impl Program {
    /// Total static instruction count across all procedures.
    pub fn static_insts(&self) -> u64 {
        self.procs.iter().map(|p| p.len() as u64).sum()
    }

    /// Number of static conditional branch sites.
    pub fn static_cond_sites(&self) -> usize {
        self.cond_sites.len()
    }

    /// The highest instruction address in the program plus one slot;
    /// the program's code footprint is `[first entry, end_addr)`.
    pub fn end_addr(&self) -> Addr {
        self.procs.iter().map(|p| p.entry.offset(p.len() as u64)).max().unwrap_or(Addr::new(0))
    }

    /// Validates internal consistency: every branch target lands
    /// inside its procedure, every callee/site/dispatch index exists,
    /// and procedures do not overlap in the address space. Intended
    /// for tests and debug assertions; returns a description of the
    /// first violation found.
    pub fn validate(&self) -> Result<(), String> {
        if self.main as usize >= self.procs.len() {
            return Err(format!("main index {} out of range", self.main));
        }
        let mut spans: Vec<(u64, u64)> = self
            .procs
            .iter()
            .map(|p| (p.entry.as_u64(), p.entry.as_u64() + 4 * p.len() as u64))
            .collect();
        spans.sort_unstable();
        for w in spans.windows(2) {
            if w[0].1 > w[1].0 {
                return Err(format!(
                    "procedures overlap: [{:#x},{:#x}) and [{:#x},{:#x})",
                    w[0].0, w[0].1, w[1].0, w[1].1
                ));
            }
        }
        for (pi, proc) in self.procs.iter().enumerate() {
            let n = proc.code.len() as u32;
            for (ii, inst) in proc.code.iter().enumerate() {
                let ctx = || format!("proc {pi} inst {ii}");
                match inst {
                    Inst::Seq | Inst::Ret => {}
                    Inst::Cond { target, site } => {
                        if *target >= n {
                            return Err(format!(
                                "{}: cond target {target} out of range",
                                ctx()
                            ));
                        }
                        if *site as usize >= self.cond_sites.len() {
                            return Err(format!("{}: site {site} out of range", ctx()));
                        }
                    }
                    Inst::Uncond { target } => {
                        if *target >= n {
                            return Err(format!(
                                "{}: uncond target {target} out of range",
                                ctx()
                            ));
                        }
                    }
                    Inst::Call { callee } => {
                        if *callee as usize >= self.procs.len() {
                            return Err(format!("{}: callee {callee} out of range", ctx()));
                        }
                        if ii + 1 >= proc.code.len() {
                            return Err(format!("{}: call has no return slot", ctx()));
                        }
                    }
                    Inst::IndirectJump { dispatch } => {
                        let Some(d) = self.dispatches.get(*dispatch as usize) else {
                            return Err(format!("{}: dispatch {dispatch} out of range", ctx()));
                        };
                        for t in &d.targets {
                            if *t >= n {
                                return Err(format!(
                                    "{}: dispatch target {t} out of range",
                                    ctx()
                                ));
                            }
                        }
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cond_model_taken_rates() {
        assert!((CondModel::Bernoulli(0.3).taken_rate() - 0.3).abs() < 1e-12);
        let m = CondModel::Markov { stay_taken: 0.9, stay_not: 0.9 };
        assert!((m.taken_rate() - 0.5).abs() < 1e-12);
        let m = CondModel::Markov { stay_taken: 0.9, stay_not: 0.6 };
        // stationary: leave_n/(leave_t+leave_n) = 0.4/0.5
        assert!((m.taken_rate() - 0.8).abs() < 1e-12);
        let p = CondModel::Pattern(vec![true, true, false]);
        assert!((p.taken_rate() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn dispatch_pick_respects_weights() {
        let d = IndirectDispatch::new(vec![10, 20, 30], &[1.0, 1.0, 2.0]);
        assert_eq!(d.pick(0.0), 10);
        assert_eq!(d.pick(0.24), 10);
        assert_eq!(d.pick(0.26), 20);
        assert_eq!(d.pick(0.49), 20);
        assert_eq!(d.pick(0.51), 30);
        assert_eq!(d.pick(0.999), 30);
    }

    #[test]
    #[should_panic(expected = "at least one target")]
    fn empty_dispatch_panics() {
        let _ = IndirectDispatch::new(vec![], &[]);
    }

    fn tiny_program() -> Program {
        // proc 0 (main): cond -> ret | call p1 ; ret
        // proc 1: seq, ret
        Program {
            procs: vec![
                Procedure {
                    entry: Addr::new(0x1000),
                    code: vec![
                        Inst::Cond { target: 3, site: 0 },
                        Inst::Call { callee: 1 },
                        Inst::Seq,
                        Inst::Ret,
                    ],
                },
                Procedure { entry: Addr::new(0x2000), code: vec![Inst::Seq, Inst::Ret] },
            ],
            cond_sites: vec![CondModel::Bernoulli(0.5)],
            dispatches: vec![],
            main: 0,
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert_eq!(tiny_program().validate(), Ok(()));
    }

    #[test]
    fn validate_rejects_bad_target() {
        let mut p = tiny_program();
        p.procs[0].code[0] = Inst::Cond { target: 99, site: 0 };
        assert!(p.validate().unwrap_err().contains("out of range"));
    }

    #[test]
    fn validate_rejects_overlap() {
        let mut p = tiny_program();
        p.procs[1].entry = Addr::new(0x1004);
        assert!(p.validate().unwrap_err().contains("overlap"));
    }

    #[test]
    fn static_counts() {
        let p = tiny_program();
        assert_eq!(p.static_insts(), 6);
        assert_eq!(p.static_cond_sites(), 1);
        assert_eq!(p.end_addr(), Addr::new(0x2008));
    }
}
