//! Dynamic instruction records.
//!
//! A trace is a stream of [`TraceRecord`]s, one per executed
//! instruction. Records carry everything the fetch-prediction
//! simulator needs: the instruction's address, its control-flow
//! class, the resolved outcome for conditional branches, and the
//! address control actually transferred to.

use crate::addr::Addr;

/// The kind of a control-transfer ("break") instruction.
///
/// These are the five break categories of Table 1 in the paper:
/// conditional branches, indirect jumps, unconditional branches,
/// procedure calls and procedure returns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BreakKind {
    /// A conditional direct branch (PC-relative target, may fall through).
    Conditional,
    /// An unconditional direct branch (PC-relative target).
    Unconditional,
    /// An indirect jump through a register (target known only at execute).
    IndirectJump,
    /// A direct procedure call (pushes `pc + 4` on the return stack).
    Call,
    /// A procedure return (indirect through the link register).
    Return,
}

impl BreakKind {
    /// All break kinds, in Table 1 column order.
    pub const ALL: [BreakKind; 5] = [
        BreakKind::Conditional,
        BreakKind::IndirectJump,
        BreakKind::Unconditional,
        BreakKind::Call,
        BreakKind::Return,
    ];

    /// The position of this kind in [`BreakKind::ALL`] (Table 1
    /// column order), as a constant-time lookup. Everything that
    /// keeps per-kind arrays — `Counters::by_kind`, the metrics
    /// attribution tables — indexes them with this, so the mapping
    /// lives in exactly one place.
    #[inline]
    pub const fn index(self) -> usize {
        match self {
            BreakKind::Conditional => 0,
            BreakKind::IndirectJump => 1,
            BreakKind::Unconditional => 2,
            BreakKind::Call => 3,
            BreakKind::Return => 4,
        }
    }

    /// Whether the target address can be recomputed from the
    /// instruction itself during the decode stage (direct branches),
    /// as opposed to only at execute (indirect jumps and returns).
    ///
    /// This distinction decides whether a wrong fetch costs a
    /// misfetch penalty (decode-time fix) or a mispredict penalty
    /// (execute-time fix); see the paper's §5.2.
    #[inline]
    pub fn target_known_at_decode(self) -> bool {
        matches!(self, BreakKind::Conditional | BreakKind::Unconditional | BreakKind::Call)
    }
}

/// The control-flow class of an executed instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstClass {
    /// An ordinary instruction: execution continues at `pc + 4`.
    Sequential,
    /// A break in control flow of the given kind.
    Break(BreakKind),
}

impl InstClass {
    /// Whether this instruction is a break in control flow.
    #[inline]
    pub fn is_break(self) -> bool {
        matches!(self, InstClass::Break(_))
    }

    /// The break kind, if this is a break.
    #[inline]
    pub fn break_kind(self) -> Option<BreakKind> {
        match self {
            InstClass::Sequential => None,
            InstClass::Break(k) => Some(k),
        }
    }
}

/// One executed instruction.
///
/// # Examples
///
/// ```
/// use nls_trace::{Addr, BreakKind, TraceRecord};
///
/// // A taken conditional branch at 0x100 jumping to 0x200:
/// let r = TraceRecord::branch(Addr::new(0x100), BreakKind::Conditional, true, Addr::new(0x200));
/// assert_eq!(r.next_pc(), Addr::new(0x200));
///
/// // The same branch, not taken, falls through:
/// let r = TraceRecord::branch(Addr::new(0x100), BreakKind::Conditional, false, Addr::new(0x200));
/// assert_eq!(r.next_pc(), Addr::new(0x104));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceRecord {
    /// Address of this instruction.
    pub pc: Addr,
    /// Control-flow class.
    pub class: InstClass,
    /// For conditional branches: whether the branch was taken.
    /// Non-conditional breaks are always "taken"; sequential
    /// instructions are never taken.
    pub taken: bool,
    /// The branch target. For conditional branches this is the
    /// *taken* target even when the branch falls through; for
    /// sequential instructions it equals `pc + 4`.
    pub target: Addr,
}

impl TraceRecord {
    /// A plain sequential instruction at `pc`.
    #[inline]
    pub fn sequential(pc: Addr) -> Self {
        TraceRecord { pc, class: InstClass::Sequential, taken: false, target: pc.next() }
    }

    /// A break of kind `kind` at `pc`. For non-conditional kinds,
    /// `taken` must be `true`. The contract is checked in debug
    /// builds only: this sits on the per-record path, and both
    /// callers uphold it by construction — the file decoder rejects
    /// not-taken non-conditional frames before building the record,
    /// and the synthetic walker only emits well-formed breaks.
    #[inline]
    pub fn branch(pc: Addr, kind: BreakKind, taken: bool, target: Addr) -> Self {
        debug_assert!(
            taken || kind == BreakKind::Conditional,
            "only conditional branches can fall through"
        );
        TraceRecord { pc, class: InstClass::Break(kind), taken, target }
    }

    /// The address of the next instruction actually executed after
    /// this one: the target if taken, otherwise the fall-through.
    #[inline]
    pub fn next_pc(&self) -> Addr {
        if self.taken {
            self.target
        } else {
            self.pc.next()
        }
    }

    /// Whether this record is a break in control flow.
    #[inline]
    pub fn is_break(&self) -> bool {
        self.class.is_break()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_next_pc() {
        let r = TraceRecord::sequential(Addr::new(0x40));
        assert_eq!(r.next_pc(), Addr::new(0x44));
        assert!(!r.is_break());
        assert_eq!(r.class.break_kind(), None);
    }

    #[test]
    fn taken_branch_goes_to_target() {
        let r = TraceRecord::branch(
            Addr::new(0x40),
            BreakKind::Unconditional,
            true,
            Addr::new(0x1000),
        );
        assert_eq!(r.next_pc(), Addr::new(0x1000));
        assert!(r.is_break());
    }

    #[test]
    fn not_taken_conditional_falls_through() {
        let r = TraceRecord::branch(
            Addr::new(0x40),
            BreakKind::Conditional,
            false,
            Addr::new(0x1000),
        );
        assert_eq!(r.next_pc(), Addr::new(0x44));
        assert_eq!(r.class.break_kind(), Some(BreakKind::Conditional));
    }

    #[test]
    #[should_panic(expected = "fall through")]
    fn not_taken_unconditional_panics() {
        let _ = TraceRecord::branch(
            Addr::new(0x40),
            BreakKind::Unconditional,
            false,
            Addr::new(0x1000),
        );
    }

    #[test]
    fn index_is_the_position_in_all() {
        for (i, &k) in BreakKind::ALL.iter().enumerate() {
            assert_eq!(k.index(), i, "{k:?}");
            assert_eq!(BreakKind::ALL[k.index()], k);
        }
    }

    #[test]
    fn decode_time_targets() {
        assert!(BreakKind::Conditional.target_known_at_decode());
        assert!(BreakKind::Unconditional.target_known_at_decode());
        assert!(BreakKind::Call.target_known_at_decode());
        assert!(!BreakKind::IndirectJump.target_known_at_decode());
        assert!(!BreakKind::Return.target_known_at_decode());
    }
}
