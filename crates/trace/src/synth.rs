//! Synthetic program builder.
//!
//! The paper's workloads are ATOM-instrumented Alpha binaries we do
//! not have. This module rebuilds *statistically equivalent*
//! programs from the Table 1 profiles: an interpreter-style driver
//! procedure dispatches (through a binary decision tree of
//! conditional branches, like a real interpreter's opcode dispatch)
//! into a population of loop-structured procedures whose conditional
//! branch sites carry the profile's hot-branch weight curve, branch
//! type mix, taken rate and break density. Cold procedures that are
//! never dispatched supply the never-executed static branch sites,
//! and the hot/cold procedures are interleaved in the address space
//! the way a real linker would lay them out.
//!
//! The derivation of the structural parameters (breaks per dispatch,
//! call/indirect/unconditional site densities, sequential-run
//! lengths, taken-bias mixture) is done symbolically in [`Plan`] so
//! it can be unit-tested against the profile algebra.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::addr::Addr;
use crate::profile::BenchProfile;
use crate::program::{CondModel, IndirectDispatch, Inst, Procedure, Program};
use crate::weights::WeightCurve;

/// Tunable knobs for program synthesis. Use
/// [`GenConfig::for_profile`] for the calibrated defaults.
#[derive(Debug, Clone, PartialEq)]
pub struct GenConfig {
    /// RNG seed; the same seed always produces the identical program.
    pub seed: u64,
    /// Mean conditional branch sites per hot procedure body.
    pub body_cond_sites: usize,
    /// Mean loop iterations per hot-procedure visit.
    pub mean_loop_trips: f64,
    /// Conditional sites per leaf procedure.
    pub leaf_cond_sites: usize,
    /// Fraction of conditional sites that are hard to predict
    /// (close to 50/50).
    pub hard_frac: f64,
    /// Fraction of sites driven by a fixed repeating pattern
    /// (predictable only with branch history).
    pub pattern_frac: f64,
    /// Fraction of sites driven by a two-state Markov process.
    pub markov_frac: f64,
    /// Fraction of dispatches sent into the deep call chain that
    /// exercises return-stack overflow.
    pub deep_chain_weight: f64,
    /// Length of the deep call chain (procedures / stack depth).
    pub deep_chain_len: usize,
    /// Base address of the program text.
    pub base_addr: u64,
    /// Code-layout strategy (link order of procedures).
    pub layout: Layout,
}

/// How procedures are placed in the address space.
///
/// The paper (§7) notes that whole-program restructuring — basic
/// block reordering and intelligent procedure layout (Pettis &
/// Hansen) — lowers the instruction-cache miss rate "at no
/// additional architectural cost", which improves the NLS
/// architecture but not the BTB. [`Layout::HotClustered`] models
/// such a profile-guided layout; [`Layout::Shuffled`] models
/// arbitrary link order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Layout {
    /// Hot and cold procedures interleaved pseudo-randomly, the way
    /// an unoptimised link order scatters them (the default, and
    /// the paper's baseline).
    #[default]
    Shuffled,
    /// Profile-guided: procedures placed hottest-first, so the hot
    /// working set occupies a compact, conflict-free region.
    HotClustered,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            seed: 0x5ca1_ab1e,
            body_cond_sites: 8,
            mean_loop_trips: 4.0,
            leaf_cond_sites: 2,
            hard_frac: 0.05,
            pattern_frac: 0.08,
            markov_frac: 0.05,
            deep_chain_weight: 0.002,
            deep_chain_len: 40,
            base_addr: 0x0010_0000,
            layout: Layout::Shuffled,
        }
    }
}

impl GenConfig {
    /// Calibrated configuration for one of the six Table 1 programs.
    /// Unknown names get the defaults.
    pub fn for_profile(profile: &BenchProfile) -> Self {
        let mut cfg = GenConfig::default();
        match profile.name {
            // FP loops: predictable branches, long trip counts.
            "doduc" => {
                cfg.hard_frac = 0.03;
                cfg.mean_loop_trips = 6.0;
            }
            // Bit-twiddling loops, well-biased branches.
            "espresso" => {
                cfg.hard_frac = 0.04;
                cfg.pattern_frac = 0.10;
            }
            // The paper calls gcc/cfront/groff branches hard to predict.
            "gcc" => {
                cfg.hard_frac = 0.08;
                cfg.mean_loop_trips = 3.0;
            }
            "cfront" => {
                cfg.hard_frac = 0.07;
                cfg.mean_loop_trips = 3.0;
            }
            "groff" => {
                cfg.hard_frac = 0.07;
                cfg.mean_loop_trips = 3.5;
            }
            // Lisp interpreter: recursion deep enough to overflow a
            // 32-entry return stack now and then.
            "li" => {
                cfg.hard_frac = 0.04;
                cfg.deep_chain_weight = 0.015;
                cfg.deep_chain_len = 48;
                cfg.mean_loop_trips = 3.0;
            }
            _ => {}
        }
        cfg
    }
}

/// Structural parameters derived from a profile: the algebra that
/// maps Table 1 statistics onto program structure. Exposed for
/// testing; produced by [`Plan::derive`].
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// Number of hot (dispatched) procedures.
    pub hot_procs: usize,
    /// Dispatch-tree depth (= ceil(log2(leaves))).
    pub tree_depth: usize,
    /// Expected breaks per dispatch (one driver-loop iteration).
    pub breaks_per_visit: f64,
    /// Call sites per body iteration (fractional; realised by
    /// randomised rounding per procedure).
    pub calls_per_iter: f64,
    /// Indirect-jump sites per body iteration.
    pub ijs_per_iter: f64,
    /// Free unconditional-branch sites per body iteration.
    pub unconds_per_iter: f64,
    /// Mean sequential-run length between break sites.
    pub run_mean: f64,
    /// Target mean taken-probability of body/leaf conditional sites.
    pub body_taken_mean: f64,
    /// Probability that a biased site is biased-taken (vs biased
    /// not-taken), chosen so the overall taken rate matches.
    pub biased_taken_frac: f64,
    /// Number of leaf procedures in the shared callee pool.
    pub leaf_procs: usize,
    /// Number of cold (never-executed) procedures.
    pub cold_procs: usize,
    /// Conditional sites per cold procedure.
    pub cold_sites_per_proc: usize,
}

/// Mean skip distance of an if-style conditional site (instructions
/// jumped over when taken), for skips drawn uniformly from 1..=4.
const MEAN_SKIP: f64 = 2.5;
/// Fixed short run length used inside leaf procedures.
const LEAF_RUN: usize = 3;

impl Plan {
    /// Derives the structural plan for `profile` under `config`.
    pub fn derive(profile: &BenchProfile, config: &GenConfig) -> Plan {
        let mix = &profile.mix;
        let c_f = mix.cond / 100.0;
        let i_f = mix.indirect / 100.0;
        let b_f = mix.uncond / 100.0;
        // Calls and returns are perfectly nested in the synthetic
        // program, so use their average as the call fraction.
        let ca_f = (mix.call + mix.ret) / 200.0;

        let bc = config.body_cond_sites as f64;
        let l = config.mean_loop_trips;
        let gc = config.leaf_cond_sites as f64;
        let group = config.body_cond_sites + 1; // body sites + back edge

        // Partition the executed-site budget (Q-100) between the
        // dispatch tree, hot-proc bodies, leaves and the deep chain.
        let q100 = profile.quantiles.q100 as usize;
        let leaf_procs = (q100 / (8 * group)).clamp(4, 64);
        let chain_sites = config.deep_chain_len; // one site per chain proc
        let leaf_sites = leaf_procs * config.leaf_cond_sites;
        let budget = q100.saturating_sub(leaf_sites + chain_sites).max(2 * group);
        // tree has (P - 1) internal sites, bodies have P * group.
        let hot_procs = ((budget + 1) / (group + 1)).max(2);
        let tree_leaves = hot_procs + 1; // +1 for the deep-chain head
        let tree_depth = usize::BITS as usize - (tree_leaves - 1).leading_zeros() as usize;
        let d = tree_depth as f64;

        // Breaks per visit, from the conditional-fraction equation:
        //   c_f*V = d + L*(Bc+1) + 2*L*B_ca   with   B_ca = (ca_f*V - 1)/L
        let denom = (c_f - 2.0 * ca_f * gc / 2.0).max(0.05);
        let v = ((d + l * (bc + 1.0) - gc) / denom).max(1.0 / ca_f.max(1e-3) + 4.0);

        let calls_per_iter = ((ca_f * v - 1.0) / l).max(0.0);
        let ijs_per_iter = (i_f * v / l).max(0.0);
        let unconds_per_iter = (((b_f - i_f) * v - 1.0) / l).max(0.0);

        // Taken-rate equation (taken conditional executions per visit):
        //   T*c_f*V = d/2 + (L-1) + L*(Bc + B_ca*Gc) * p_mean
        let t = profile.pct_taken / 100.0;
        let body_sites_per_visit = l * (bc + calls_per_iter * gc);
        let body_taken_mean =
            ((t * c_f * v - 0.5 * d - (l - 1.0)) / body_sites_per_visit).clamp(0.08, 0.92);

        // Mixture solve: hard/pattern/markov sites average ~0.5 taken;
        // biased sites average 0.0275 + 0.945 * biased_taken_frac
        // (biased-taken sites run ~0.9725 taken, biased-not ~0.0275).
        let neutral = config.hard_frac + config.pattern_frac + config.markov_frac;
        let biased = (1.0 - neutral).max(0.05);
        let biased_taken_frac =
            (((body_taken_mean - 0.5 * neutral) / biased - 0.0275) / 0.945).clamp(0.0, 1.0);

        // Sequential-run solve: S(m) = A + B*m must equal V * mean_gap.
        let leaf_seq =
            LEAF_RUN as f64 + gc * ((1.0 - body_taken_mean) * MEAN_SKIP + LEAF_RUN as f64);
        let coeff_a = d
            + 2.0
            + l * (bc * (1.0 - body_taken_mean) * MEAN_SKIP + calls_per_iter * leaf_seq);
        let coeff_b = 2.0 + l * (bc + unconds_per_iter + 2.0 * ijs_per_iter + calls_per_iter);
        let run_mean = ((v * profile.mean_gap() - coeff_a) / coeff_b).max(0.0);

        // Cold procedures hold the never-executed static sites.
        let executed_sites = (hot_procs - 1) + hot_procs * group + leaf_sites + chain_sites;
        let cold_sites = (profile.static_cond_sites as usize).saturating_sub(executed_sites);
        let cold_sites_per_proc = group;
        let cold_procs = cold_sites.div_ceil(cold_sites_per_proc.max(1));

        Plan {
            hot_procs,
            tree_depth,
            breaks_per_visit: v,
            calls_per_iter,
            ijs_per_iter,
            unconds_per_iter,
            run_mean,
            body_taken_mean,
            biased_taken_frac,
            leaf_procs,
            cold_procs,
            cold_sites_per_proc,
        }
    }
}

/// Builds the synthetic program for `profile` under `config`.
///
/// The result is deterministic in (`profile`, `config`): the same
/// inputs always produce the identical program, and the walker run
/// over it with the same seed produces the identical trace.
///
/// # Examples
///
/// ```
/// use nls_trace::{BenchProfile, GenConfig, synthesize};
///
/// let profile = BenchProfile::li();
/// let program = synthesize(&profile, &GenConfig::for_profile(&profile));
/// assert!(program.validate().is_ok());
/// ```
pub fn synthesize(profile: &BenchProfile, config: &GenConfig) -> Program {
    Builder::new(profile, config).build()
}

/// Incremental program builder.
struct Builder<'a> {
    config: &'a GenConfig,
    plan: Plan,
    curve: WeightCurve,
    rng: SmallRng,
    /// Per-category body-site counts for the quota scheduler
    /// (hard, pattern, markov, biased-taken, biased-not).
    cat_counts: [u64; 5],
    cond_sites: Vec<CondModel>,
    dispatches: Vec<IndirectDispatch>,
    /// Procedure bodies in index order; addresses assigned at the end.
    bodies: Vec<Vec<Inst>>,
}

/// Procedure index layout: `main` is 0, hot procs are `1..=P`, then
/// the chain, then leaves, then cold procs.
impl<'a> Builder<'a> {
    fn new(profile: &'a BenchProfile, config: &'a GenConfig) -> Self {
        Builder {
            config,
            plan: Plan::derive(profile, config),
            curve: WeightCurve::from_quantiles(&profile.quantiles),
            rng: SmallRng::seed_from_u64(config.seed),
            cat_counts: [0; 5],
            cond_sites: Vec::new(),
            dispatches: Vec::new(),
            bodies: Vec::new(),
        }
    }

    fn build(mut self) -> Program {
        let p = self.plan.hot_procs;
        let chain_len = self.config.deep_chain_len;
        let main_idx = 0u32;
        let hot_base = 1u32;
        let chain_base = hot_base + p as u32;
        let leaf_base = chain_base + chain_len as u32;
        let cold_base = leaf_base + self.plan.leaf_procs as u32;
        let total_procs = cold_base as usize + self.plan.cold_procs;

        // Per-hot-proc loop-trip means, then dispatch weights
        // proportional to (site chunk mass) / trips so per-site
        // execution frequencies follow the weight curve.
        let group = self.config.body_cond_sites + 1;
        let chunk_masses = self.curve.chunk_masses(group);
        let l = self.config.mean_loop_trips;
        let trips: Vec<f64> =
            (0..p).map(|_| self.rng.random_range(0.6 * l..=1.6 * l).max(1.2)).collect();
        let mut weights: Vec<f64> = trips
            .iter()
            .enumerate()
            .map(|(j, t)| chunk_masses.get(j).copied().unwrap_or(1e-9).max(1e-9) / t)
            .collect();
        let wsum: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= wsum;
        }
        // Fold the deep chain in as one more dispatch target.
        let chain_weight = self.config.deep_chain_weight.max(1e-6);
        for w in &mut weights {
            *w *= 1.0 - chain_weight;
        }
        weights.push(chain_weight);

        // Procedure indices are assigned contiguously (main, hot,
        // chain, leaves, cold), so the bodies can be pushed in order.
        self.bodies = Vec::new();
        let leaves: Vec<u32> =
            (hot_base..hot_base + p as u32).chain(std::iter::once(chain_base)).collect();
        let main_body = self.build_main(&leaves, &weights);
        self.bodies.push(main_body);
        let callee_pool = (leaf_base..cold_base).collect::<Vec<_>>();
        for &t in &trips {
            let body = self.build_hot_proc(t, &callee_pool);
            self.bodies.push(body);
        }
        for i in 0..chain_len {
            let next = if i + 1 < chain_len { Some(chain_base + i as u32 + 1) } else { None };
            let body = self.build_chain_proc(next);
            self.bodies.push(body);
        }
        for _ in 0..self.plan.leaf_procs {
            let body = self.build_leaf_proc();
            self.bodies.push(body);
        }
        for _ in 0..self.plan.cold_procs {
            let body = self.build_cold_proc();
            self.bodies.push(body);
        }
        debug_assert_eq!(self.bodies.len(), total_procs);

        // Layout: main first (it is the hottest code), then everything
        // else either shuffled (arbitrary link order scatters hot
        // procedures across the address space) or clustered
        // hottest-first (profile-guided layout, Pettis–Hansen style).
        let mut order: Vec<usize> = (1..total_procs).collect();
        match self.config.layout {
            Layout::Shuffled => shuffle(&mut order, &mut self.rng),
            Layout::HotClustered => {
                // Hot procedures by descending dispatch weight, then
                // leaves and the chain, cold procedures last.
                let weight_of = |idx: usize| -> f64 {
                    if (hot_base as usize..chain_base as usize).contains(&idx) {
                        weights.get(idx - hot_base as usize).copied().unwrap_or(0.0)
                    } else if idx < cold_base as usize {
                        1e-7 // leaves + chain: warm
                    } else {
                        0.0 // cold
                    }
                };
                order.sort_by(|&a, &b| {
                    weight_of(b).partial_cmp(&weight_of(a)).unwrap_or(std::cmp::Ordering::Equal)
                });
            }
        }
        let mut cursor = self.config.base_addr;
        let mut entries = vec![Addr::new(0); total_procs];
        for idx in std::iter::once(0).chain(order) {
            if let Some(entry) = entries.get_mut(idx) {
                *entry = Addr::new(cursor);
            }
            let len_bytes = 4 * self.bodies.get(idx).map_or(0, |b| b.len() as u64);
            // Align each procedure to a 32-byte line boundary.
            cursor = (cursor + len_bytes).div_ceil(32) * 32;
        }

        let procs = entries
            .into_iter()
            .zip(std::mem::take(&mut self.bodies))
            .map(|(entry, code)| Procedure { entry, code })
            .collect();

        let program = Program {
            procs,
            cond_sites: self.cond_sites,
            dispatches: self.dispatches,
            main: main_idx,
        };
        debug_assert_eq!(program.validate(), Ok(()));
        program
    }

    /// A new conditional site with an outcome model drawn from the
    /// configured mixture around the plan's mean taken rate.
    ///
    /// Real branches are far more deterministic than a coin flip —
    /// that determinism is what history-based predictors exploit —
    /// so the mixture is dominated by strongly biased sites, exact
    /// repeating patterns and sticky Markov sites, with only
    /// `hard_frac` genuinely noisy branches.
    fn new_body_site(&mut self) -> u32 {
        let cfg = self.config;
        let biased = (1.0 - cfg.hard_frac - cfg.pattern_frac - cfg.markov_frac).max(0.0);
        let targets = [
            cfg.hard_frac,
            cfg.pattern_frac,
            cfg.markov_frac,
            biased * self.plan.biased_taken_frac,
            biased * (1.0 - self.plan.biased_taken_frac),
        ];
        // Quota scheduling instead of IID sampling: sites are created
        // hottest-first, and the handful of mega-hot sites would
        // otherwise all land in whatever category the dice favoured,
        // skewing the execution-weighted mixture (and with it the
        // global taken rate) badly on skewed profiles like doduc.
        let n = self.cat_counts.iter().sum::<u64>() + 1;
        let deficit = |i: usize| -> f64 {
            targets.get(i).copied().unwrap_or(0.0) * n as f64
                - self.cat_counts.get(i).copied().unwrap_or(0) as f64
        };
        let cat = (0..5)
            .max_by(|&a, &b| {
                deficit(a).partial_cmp(&deficit(b)).unwrap_or(std::cmp::Ordering::Equal)
            })
            .unwrap_or(0);
        if let Some(count) = self.cat_counts.get_mut(cat) {
            *count += 1;
        }
        let model = match cat {
            0 => CondModel::Bernoulli(self.rng.random_range(0.35..0.65)),
            1 => {
                let len = self.rng.random_range(2..=4usize);
                let taken = len / 2 + usize::from(self.rng.random_bool(0.5));
                let mut pat = vec![false; len];
                for slot in pat.iter_mut().take(taken.min(len)) {
                    *slot = true;
                }
                shuffle(&mut pat, &mut self.rng);
                CondModel::Pattern(pat)
            }
            2 => CondModel::Markov {
                stay_taken: self.rng.random_range(0.94..0.995),
                stay_not: self.rng.random_range(0.94..0.995),
            },
            3 => CondModel::Bernoulli(self.rng.random_range(0.98..0.999)),
            _ => CondModel::Bernoulli(self.rng.random_range(0.001..0.02)),
        };
        self.push_site(model)
    }

    fn push_site(&mut self, model: CondModel) -> u32 {
        let id = self.cond_sites.len() as u32;
        self.cond_sites.push(model);
        id
    }

    /// Run length with the plan's mean and modest (±50 %) jitter.
    ///
    /// Deliberately *not* geometric: run lengths are frozen into the
    /// program at build time, and on heavily skewed profiles (doduc:
    /// three branches are half of all executions) a single hot
    /// procedure's draws dominate the dynamic break density. A tight
    /// distribution keeps every procedure's realised mean close to
    /// the solved target.
    fn run_len(&mut self) -> usize {
        let m = self.plan.run_mean;
        if m <= 0.05 {
            return 0;
        }
        (m * self.rng.random_range(0.5..1.5)).round() as usize
    }

    fn emit_run(&mut self, code: &mut Vec<Inst>, n: usize) {
        code.extend(std::iter::repeat_n(Inst::Seq, n));
    }

    /// The driver: `loop_head:` decision tree over `leaves`, each
    /// leaf calls its procedure then jumps back to the head.
    fn build_main(&mut self, leaves: &[u32], weights: &[f64]) -> Vec<Inst> {
        // Internal invariant: both slices come from the same zip in
        // `build`, so the lengths cannot diverge in release builds.
        debug_assert_eq!(leaves.len(), weights.len());
        let mut code = vec![Inst::Seq, Inst::Seq]; // loop head
        self.build_tree(&mut code, leaves, weights);
        code
    }

    /// Recursively emits the dispatch tree; every node is a real
    /// conditional branch site (taken = right subtree).
    fn build_tree(&mut self, code: &mut Vec<Inst>, leaves: &[u32], weights: &[f64]) {
        if let [leaf] = leaves {
            code.push(Inst::Call { callee: *leaf });
            code.push(Inst::Uncond { target: 0 });
            return;
        }
        if leaves.is_empty() {
            return;
        }
        // Split at the *weight* midpoint, not the count midpoint:
        // the tree is entropy-optimal (hot procedures get short
        // dispatch paths) and every node's outcome is near 50/50,
        // like a real interpreter's dispatch comparisons.
        let total: f64 = weights.iter().sum();
        let mut mid = 1;
        let mut acc = 0.0;
        for (i, w) in weights.iter().take(weights.len().saturating_sub(1)).enumerate() {
            acc += w;
            mid = i + 1;
            if acc >= total / 2.0 {
                break;
            }
        }
        // `mid` is in 1..len, so both halves are non-empty and the
        // recursion strictly shrinks.
        let mid = mid.clamp(1, leaves.len().saturating_sub(1));
        let (l_leaves, r_leaves) = leaves.split_at(mid.min(leaves.len()));
        let (l_weights, r_weights) = weights.split_at(mid.min(weights.len()));
        let w_left: f64 = l_weights.iter().sum();
        let w_right: f64 = r_weights.iter().sum();
        let p_right = if w_left + w_right > 0.0 { w_right / (w_left + w_right) } else { 0.5 };
        let p = p_right.clamp(0.001, 0.999);
        // Sticky dispatch: consecutive dispatches tend to revisit the
        // same region (program phase behaviour). A Markov node with
        // leave probabilities scaled by STICKINESS keeps the same
        // stationary split as an independent Bernoulli(p) while
        // making the dispatch path bursty and history-predictable.
        const STICKINESS: f64 = 0.35;
        let site = self.push_site(CondModel::Markov {
            stay_taken: 1.0 - (1.0 - p) * STICKINESS,
            stay_not: 1.0 - p * STICKINESS,
        });
        code.push(Inst::Seq); // the "compare" before the branch
        let cond_at = code.len();
        code.push(Inst::Cond { target: 0, site }); // patched below
        self.build_tree(code, l_leaves, l_weights);
        let right_start = code.len() as u32;
        if let Some(slot) = code.get_mut(cond_at) {
            *slot = Inst::Cond { target: right_start, site };
        }
        self.build_tree(code, r_leaves, r_weights);
    }

    /// One hot procedure: prologue, loop body of interleaved sites,
    /// back edge, epilogue, return.
    fn build_hot_proc(&mut self, trips: f64, callee_pool: &[u32]) -> Vec<Inst> {
        #[derive(Clone, Copy)]
        enum Elem {
            Cond,
            Uncond,
            Ij,
            Call,
        }
        let plan = self.plan.clone();
        let n_cond = self.config.body_cond_sites;
        let n_uncond = self.round_stochastic(plan.unconds_per_iter);
        let n_ij = self.round_stochastic(plan.ijs_per_iter);
        let n_call = self.round_stochastic(plan.calls_per_iter);

        let mut elems = Vec::new();
        elems.extend(std::iter::repeat_n(Elem::Cond, n_cond));
        elems.extend(std::iter::repeat_n(Elem::Uncond, n_uncond));
        elems.extend(std::iter::repeat_n(Elem::Ij, n_ij));
        elems.extend(std::iter::repeat_n(Elem::Call, n_call));
        shuffle(&mut elems, &mut self.rng);

        let mut code = Vec::new();
        let run = self.run_len();
        self.emit_run(&mut code, run); // prologue
        let loop_head = code.len() as u32;
        for e in elems {
            match e {
                Elem::Cond => {
                    let site = self.new_body_site();
                    let skip = self.rng.random_range(1..=4u32);
                    let cond_at = code.len() as u32;
                    code.push(Inst::Cond { target: cond_at + 1 + skip, site });
                    self.emit_run(&mut code, skip as usize);
                }
                Elem::Uncond => {
                    // Jump over one dead slot (an "else" the loop never
                    // takes): static footprint without dynamic cost.
                    let at = code.len() as u32;
                    code.push(Inst::Uncond { target: at + 2 });
                    code.push(Inst::Seq);
                }
                Elem::Ij => self.emit_indirect(&mut code),
                Elem::Call => {
                    let pick = zipf_pick(callee_pool.len(), &mut self.rng);
                    if let Some(&callee) = callee_pool.get(pick) {
                        code.push(Inst::Call { callee });
                    }
                }
            }
            let n = self.run_len();
            self.emit_run(&mut code, n);
        }
        // Back edge: a deterministic trip count — the loop iterates
        // `trips` times, every time (taken trips-1 times, then one
        // exit). Fixed trip counts are what make real loop branches
        // history-predictable.
        let trips_int = (trips.round() as usize).max(2);
        let mut pat = vec![true; trips_int];
        if let Some(last) = pat.last_mut() {
            *last = false;
        }
        let site = self.push_site(CondModel::Pattern(pat));
        code.push(Inst::Cond { target: loop_head, site });
        let n = self.run_len();
        self.emit_run(&mut code, n); // epilogue
        code.push(Inst::Ret);
        code
    }

    /// A switch-style indirect jump: `k` case blocks, each a short
    /// run ending in a jump to the join point.
    fn emit_indirect(&mut self, code: &mut Vec<Inst>) {
        let k = self.rng.random_range(3..=8usize);
        let ij_at = code.len();
        code.push(Inst::IndirectJump { dispatch: 0 }); // patched below
        let mut targets = Vec::with_capacity(k.min(8));
        let mut uncond_slots = Vec::with_capacity(k.min(8));
        for _ in 0..k {
            targets.push(code.len() as u32);
            let n = self.run_len().min(6);
            self.emit_run(code, n);
            uncond_slots.push(code.len());
            code.push(Inst::Uncond { target: 0 }); // patched below
        }
        let join = code.len() as u32;
        for slot in uncond_slots {
            if let Some(inst) = code.get_mut(slot) {
                *inst = Inst::Uncond { target: join };
            }
        }
        // Skewed case weights: one dominant case, geometric tail.
        let mut w = Vec::with_capacity(k.min(8));
        let mut v = 0.60;
        for _ in 0..k {
            w.push(v);
            v *= 0.45;
        }
        let dispatch = self.dispatches.len() as u32;
        self.dispatches.push(IndirectDispatch::new(targets, &w));
        if let Some(inst) = code.get_mut(ij_at) {
            *inst = Inst::IndirectJump { dispatch };
        }
    }

    /// One proc of the deep call chain: a couple of instructions, a
    /// conditional site, a call to the next link, return.
    fn build_chain_proc(&mut self, next: Option<u32>) -> Vec<Inst> {
        let bias = self.rng.random_range(0.3..0.7);
        let site = self.push_site(CondModel::Bernoulli(bias));
        let mut code = vec![Inst::Seq, Inst::Seq];
        let at = code.len() as u32;
        code.push(Inst::Cond { target: at + 2, site });
        code.push(Inst::Seq);
        if let Some(callee) = next {
            code.push(Inst::Call { callee });
        }
        code.push(Inst::Seq);
        code.push(Inst::Ret);
        code
    }

    /// A leaf procedure: short runs around `leaf_cond_sites` sites.
    fn build_leaf_proc(&mut self) -> Vec<Inst> {
        let mut code = Vec::new();
        self.emit_run(&mut code, LEAF_RUN);
        for _ in 0..self.config.leaf_cond_sites {
            let site = self.new_body_site();
            let skip = self.rng.random_range(1..=4u32);
            let at = code.len() as u32;
            code.push(Inst::Cond { target: at + 1 + skip, site });
            self.emit_run(&mut code, skip as usize);
            self.emit_run(&mut code, LEAF_RUN);
        }
        code.push(Inst::Ret);
        code
    }

    /// Cold code: same shape as a hot body but never dispatched.
    fn build_cold_proc(&mut self) -> Vec<Inst> {
        let mut code = Vec::new();
        self.emit_run(&mut code, 2);
        for _ in 0..self.plan.cold_sites_per_proc {
            let site = self.push_site(CondModel::Bernoulli(0.01));
            let skip = self.rng.random_range(1..=4u32);
            let at = code.len() as u32;
            code.push(Inst::Cond { target: at + 1 + skip, site });
            self.emit_run(&mut code, skip as usize);
            self.emit_run(&mut code, 3);
        }
        code.push(Inst::Ret);
        code
    }

    /// Rounds a fractional per-iteration count to an integer with the
    /// right expectation.
    fn round_stochastic(&mut self, x: f64) -> usize {
        let base = x.floor();
        let frac = x - base;
        base as usize + usize::from(self.rng.random_bool(frac.clamp(0.0, 1.0)))
    }
}

/// Fisher–Yates shuffle (avoids pulling in rand's `seq` API surface).
fn shuffle<T>(v: &mut [T], rng: &mut SmallRng) {
    for i in (1..v.len()).rev() {
        let j = rng.random_range(0..=i);
        v.swap(i, j);
    }
}

/// Zipf-skewed index pick over `n` items (exponent ~1): item `i`
/// selected with probability proportional to `1/(i+1)`.
fn zipf_pick(n: usize, rng: &mut SmallRng) -> usize {
    debug_assert!(n > 0);
    if n == 0 {
        return 0;
    }
    let h: f64 = (1..=n).map(|i| 1.0 / i as f64).sum();
    let mut u = rng.random_range(0.0..h);
    for i in 0..n {
        u -= 1.0 / (i + 1) as f64;
        if u <= 0.0 {
            return i;
        }
    }
    n - 1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plan_is_feasible_for_all_profiles() {
        for p in BenchProfile::all() {
            let cfg = GenConfig::for_profile(&p);
            let plan = Plan::derive(&p, &cfg);
            assert!(plan.hot_procs >= 2, "{}: {plan:?}", p.name);
            assert!(plan.breaks_per_visit > 10.0, "{}: {plan:?}", p.name);
            assert!(plan.calls_per_iter >= 0.0, "{}", p.name);
            assert!(plan.run_mean >= 0.0, "{}: {plan:?}", p.name);
            assert!(
                (0.05..=0.95).contains(&plan.body_taken_mean),
                "{}: taken mean {}",
                p.name,
                plan.body_taken_mean
            );
        }
    }

    #[test]
    fn synthesized_programs_validate() {
        for p in BenchProfile::all() {
            let cfg = GenConfig::for_profile(&p);
            let prog = synthesize(&p, &cfg);
            assert_eq!(prog.validate(), Ok(()), "{}", p.name);
        }
    }

    #[test]
    fn static_site_count_close_to_table1() {
        for p in BenchProfile::all() {
            let prog = synthesize(&p, &GenConfig::for_profile(&p));
            let got = prog.static_cond_sites() as f64;
            let want = p.static_cond_sites as f64;
            assert!(
                (got - want).abs() / want < 0.15,
                "{}: {} static sites vs Table 1 {}",
                p.name,
                got,
                want
            );
        }
    }

    #[test]
    fn synthesis_is_deterministic() {
        let p = BenchProfile::li();
        let cfg = GenConfig::for_profile(&p);
        assert_eq!(synthesize(&p, &cfg), synthesize(&p, &cfg));
    }

    #[test]
    fn different_seeds_differ() {
        let p = BenchProfile::li();
        let a = synthesize(&p, &GenConfig { seed: 1, ..GenConfig::for_profile(&p) });
        let b = synthesize(&p, &GenConfig { seed: 2, ..GenConfig::for_profile(&p) });
        assert_ne!(a, b);
    }

    #[test]
    fn clustered_layout_packs_hot_procs_low() {
        let p = BenchProfile::gcc();
        let mut cfg = GenConfig::for_profile(&p);
        cfg.layout = Layout::HotClustered;
        let prog = synthesize(&p, &cfg);
        assert_eq!(prog.validate(), Ok(()));
        let plan = Plan::derive(&p, &cfg);
        // The hottest procedure (index 1) must sit below every cold
        // procedure (the tail indices).
        let hot_entry = prog.procs[1].entry;
        let cold_lo =
            prog.procs.iter().rev().take(plan.cold_procs / 2).map(|pr| pr.entry).min().unwrap();
        assert!(hot_entry < cold_lo, "hot {hot_entry} vs cold {cold_lo}");
    }

    #[test]
    fn layouts_share_structure_but_differ_in_placement() {
        let p = BenchProfile::li();
        let base = GenConfig::for_profile(&p);
        let shuffled = synthesize(&p, &base);
        let clustered = synthesize(&p, &GenConfig { layout: Layout::HotClustered, ..base });
        assert_eq!(shuffled.static_cond_sites(), clustered.static_cond_sites());
        assert_eq!(shuffled.procs.len(), clustered.procs.len());
        assert_ne!(shuffled, clustered, "placement must differ");
    }

    #[test]
    fn zipf_pick_prefers_small_indices() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[zipf_pick(8, &mut rng)] += 1;
        }
        assert!(counts[0] > counts[7] * 3, "{counts:?}");
    }

    #[test]
    fn footprint_scales_with_profile() {
        let small =
            synthesize(&BenchProfile::li(), &GenConfig::for_profile(&BenchProfile::li()));
        let big =
            synthesize(&BenchProfile::gcc(), &GenConfig::for_profile(&BenchProfile::gcc()));
        assert!(big.static_insts() > 2 * small.static_insts());
    }
}
