//! Program execution: turning a [`Program`] into a trace.
//!
//! [`Walker`] is an iterator over [`TraceRecord`]s that *executes*
//! the synthetic program: it maintains a call stack, samples
//! conditional outcomes from each site's model, and follows real
//! control flow. Traces are therefore PC-coherent: a record's
//! successor always starts at [`TraceRecord::next_pc`].

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use crate::program::{CondModel, Inst, Program};
use crate::record::{BreakKind, TraceRecord};

/// Per-site mutable prediction-model state.
#[derive(Debug, Clone, Copy)]
enum SiteState {
    /// No state needed (Bernoulli).
    None,
    /// Last outcome (Markov).
    Last(bool),
    /// Position in the repeating pattern.
    Pos(u8),
}

/// A call-stack frame: where to resume in which procedure.
#[derive(Debug, Clone, Copy)]
struct Frame {
    proc: u32,
    resume: u32,
}

/// Streaming executor of a synthetic [`Program`].
///
/// # Examples
///
/// ```
/// use nls_trace::{BenchProfile, GenConfig, synthesize, Walker};
///
/// let profile = BenchProfile::li();
/// let program = synthesize(&profile, &GenConfig::for_profile(&profile));
/// let n = Walker::new(&program, 42).take(10_000).count();
/// assert_eq!(n, 10_000);
/// ```
#[derive(Debug)]
pub struct Walker<'p> {
    program: &'p Program,
    rng: SmallRng,
    states: Vec<SiteState>,
    stack: Vec<Frame>,
    cur_proc: u32,
    cur_idx: u32,
}

impl<'p> Walker<'p> {
    /// Starts execution at the program's driver procedure with the
    /// given RNG seed. The walker is infinite (the driver loops
    /// forever); bound it with [`Iterator::take`] or
    /// [`Walker::take_trace`].
    pub fn new(program: &'p Program, seed: u64) -> Self {
        let states = program
            .cond_sites
            .iter()
            .map(|m| match m {
                CondModel::Bernoulli(_) => SiteState::None,
                CondModel::Markov { .. } => SiteState::Last(false),
                CondModel::Pattern(_) => SiteState::Pos(0),
            })
            .collect();
        Walker {
            program,
            rng: SmallRng::seed_from_u64(seed),
            states,
            stack: Vec::with_capacity(64),
            cur_proc: program.main,
            cur_idx: 0,
        }
    }

    /// Collects the next `n` records into a vector.
    pub fn take_trace(&mut self, n: usize) -> Vec<TraceRecord> {
        self.by_ref().take(n).collect()
    }

    /// Refills `block` with up to `want` records and returns how many
    /// were produced (fewer only when the program is malformed and
    /// the walk ends early).
    ///
    /// This is the block-decode entry point of the batched drive
    /// loops: the caller keeps one buffer alive for the whole run, so
    /// the per-record cost is a push into already-reserved capacity —
    /// no per-`next()` iterator plumbing, no reallocation after the
    /// first block.
    pub fn fill_block(&mut self, block: &mut Vec<TraceRecord>, want: usize) -> usize {
        block.clear();
        block.reserve(want);
        while block.len() < want {
            let Some(r) = self.next() else { break };
            block.push(r);
        }
        block.len()
    }

    /// Current call-stack depth (frames below the executing procedure).
    pub fn depth(&self) -> usize {
        self.stack.len()
    }

    /// Samples one conditional outcome, or `None` when `site` does
    /// not name a model/state pair (a malformed program; the walker
    /// ends the trace rather than panicking).
    fn sample_cond(&mut self, site: u32) -> Option<bool> {
        let model = self.program.cond_sites.get(site as usize)?;
        let state = self.states.get_mut(site as usize)?;
        match (model, state) {
            (CondModel::Bernoulli(p), _) => Some(self.rng.random_bool(*p)),
            (CondModel::Markov { stay_taken, stay_not }, SiteState::Last(last)) => {
                let out = if *last {
                    self.rng.random_bool(*stay_taken)
                } else {
                    !self.rng.random_bool(*stay_not)
                };
                *last = out;
                Some(out)
            }
            (CondModel::Pattern(pat), SiteState::Pos(pos)) => {
                let out = pat.get(*pos as usize % pat.len().max(1)).copied()?;
                *pos = ((*pos as usize + 1) % pat.len().max(1)) as u8;
                Some(out)
            }
            // States are built to match models in `new`; a mismatch
            // is a malformed program, not a reason to abort a sweep.
            _ => None,
        }
    }
}

impl Iterator for Walker<'_> {
    type Item = TraceRecord;

    /// Produces the next record, or `None` if the program structure
    /// is inconsistent (dangling proc/site/dispatch index). Built
    /// programs are validated, so a well-formed walker never ends;
    /// ending the stream is the total-function alternative to
    /// panicking inside a sweep worker.
    fn next(&mut self) -> Option<TraceRecord> {
        let proc = self.program.procs.get(self.cur_proc as usize)?;
        let idx = self.cur_idx;
        let pc = proc.pc(idx);
        let record = match proc.code.get(idx as usize)?.clone() {
            Inst::Seq => {
                self.cur_idx = idx + 1;
                TraceRecord::sequential(pc)
            }
            Inst::Cond { target, site } => {
                let taken = self.sample_cond(site)?;
                self.cur_idx = if taken { target } else { idx + 1 };
                TraceRecord::branch(pc, BreakKind::Conditional, taken, proc.pc(target))
            }
            Inst::Uncond { target } => {
                self.cur_idx = target;
                TraceRecord::branch(pc, BreakKind::Unconditional, true, proc.pc(target))
            }
            Inst::Call { callee } => {
                let entry = self.program.procs.get(callee as usize)?.entry;
                self.stack.push(Frame { proc: self.cur_proc, resume: idx + 1 });
                self.cur_proc = callee;
                self.cur_idx = 0;
                TraceRecord::branch(pc, BreakKind::Call, true, entry)
            }
            Inst::Ret => {
                let target = match self.stack.pop() {
                    Some(frame) => {
                        self.cur_proc = frame.proc;
                        self.cur_idx = frame.resume;
                        self.program.procs.get(frame.proc as usize)?.pc(frame.resume)
                    }
                    None => {
                        // Defensive: a return with an empty stack
                        // restarts the driver (cannot happen for
                        // synthesised programs, whose driver never
                        // returns).
                        self.cur_proc = self.program.main;
                        self.cur_idx = 0;
                        self.program.procs.get(self.program.main as usize)?.entry
                    }
                };
                TraceRecord::branch(pc, BreakKind::Return, true, target)
            }
            Inst::IndirectJump { dispatch } => {
                let d = self.program.dispatches.get(dispatch as usize)?;
                let target = d.pick(self.rng.random());
                self.cur_idx = target;
                TraceRecord::branch(pc, BreakKind::IndirectJump, true, proc.pc(target))
            }
        };
        Some(record)
    }
}

/// Convenience: synthesise a program and return an owning iterator
/// over its first `len` records.
///
/// This is the one-call entry point used by examples and benches:
///
/// ```
/// use nls_trace::{BenchProfile, GenConfig, trace_for};
///
/// let records = trace_for(&BenchProfile::espresso(), &GenConfig::default(), 123, 5_000);
/// assert_eq!(records.len(), 5_000);
/// ```
pub fn trace_for(
    profile: &crate::profile::BenchProfile,
    config: &crate::synth::GenConfig,
    seed: u64,
    len: usize,
) -> Vec<TraceRecord> {
    let program = crate::synth::synthesize(profile, config);
    Walker::new(&program, seed).take_trace(len)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::addr::Addr;
    use crate::profile::BenchProfile;
    use crate::program::{Inst, Procedure, Program};
    use crate::synth::{synthesize, GenConfig};

    fn loop_program() -> Program {
        // main: idx0 Seq, idx1 Cond(site0 -> 0), idx2 Uncond -> 0
        Program {
            procs: vec![Procedure {
                entry: Addr::new(0x1000),
                code: vec![
                    Inst::Seq,
                    Inst::Cond { target: 0, site: 0 },
                    Inst::Uncond { target: 0 },
                ],
            }],
            cond_sites: vec![CondModel::Bernoulli(0.5)],
            dispatches: vec![],
            main: 0,
        }
    }

    #[test]
    fn walker_is_pc_coherent() {
        let p = BenchProfile::groff();
        let program = synthesize(&p, &GenConfig::for_profile(&p));
        let mut w = Walker::new(&program, 9);
        let mut prev: Option<TraceRecord> = None;
        for r in w.by_ref().take(200_000) {
            if let Some(prev) = prev {
                assert_eq!(prev.next_pc(), r.pc, "discontinuity after {prev:?}");
            }
            prev = Some(r);
        }
    }

    #[test]
    fn same_seed_same_trace() {
        let p = BenchProfile::doduc();
        let program = synthesize(&p, &GenConfig::for_profile(&p));
        let a = Walker::new(&program, 5).take_trace(50_000);
        let b = Walker::new(&program, 5).take_trace(50_000);
        assert_eq!(a, b);
    }

    #[test]
    fn different_seed_different_trace() {
        let p = BenchProfile::doduc();
        let program = synthesize(&p, &GenConfig::for_profile(&p));
        let a = Walker::new(&program, 5).take_trace(50_000);
        let b = Walker::new(&program, 6).take_trace(50_000);
        assert_ne!(a, b);
    }

    #[test]
    fn fill_block_matches_the_iterator_stream() {
        let p = BenchProfile::doduc();
        let program = synthesize(&p, &GenConfig::for_profile(&p));
        let reference = Walker::new(&program, 5).take_trace(10_000);
        let mut w = Walker::new(&program, 5);
        let mut block = Vec::new();
        let mut streamed = Vec::new();
        // Deliberately awkward block size: the last block is partial.
        while streamed.len() < 10_000 {
            let want = 4096.min(10_000 - streamed.len());
            let got = w.fill_block(&mut block, want);
            assert_eq!(got, want, "well-formed programs never end the walk");
            streamed.extend_from_slice(&block);
        }
        assert_eq!(streamed, reference);
    }

    #[test]
    fn tiny_loop_walks_forever() {
        let program = loop_program();
        let w = Walker::new(&program, 1);
        assert_eq!(w.take(1000).count(), 1000);
    }

    #[test]
    fn calls_and_returns_nest() {
        let p = BenchProfile::li();
        let program = synthesize(&p, &GenConfig::for_profile(&p));
        let mut w = Walker::new(&program, 3);
        let mut shadow: Vec<Addr> = Vec::new();
        for r in w.by_ref().take(300_000) {
            match r.class.break_kind() {
                Some(BreakKind::Call) => shadow.push(r.pc.next()),
                Some(BreakKind::Return) => {
                    let expected = shadow.pop().expect("return without call");
                    assert_eq!(r.target, expected, "return target mismatch");
                }
                _ => {}
            }
        }
    }

    #[test]
    fn deep_chain_exceeds_ras_depth() {
        // li's config sends ~1.5% of dispatches into a 48-deep chain,
        // so within a million records the stack must exceed 32 frames
        // at some point. The budget is deliberately generous: chain
        // entry is a rare, bursty Markov event, and the record count
        // at which a given seed first enters depends on the RNG
        // stream (max depth is monotone in the budget, so a larger
        // walk never turns a passing stream into a failing one).
        let p = BenchProfile::li();
        let program = synthesize(&p, &GenConfig::for_profile(&p));
        let mut w = Walker::new(&program, 11);
        let mut max_depth = 0;
        for _ in 0..1_000_000 {
            let _ = w.next();
            max_depth = max_depth.max(w.depth());
        }
        assert!(max_depth > 32, "max call depth {max_depth}");
    }

    #[test]
    fn pattern_sites_repeat_exactly() {
        let program = Program {
            procs: vec![Procedure {
                entry: Addr::new(0),
                code: vec![Inst::Cond { target: 0, site: 0 }, Inst::Uncond { target: 0 }],
            }],
            cond_sites: vec![CondModel::Pattern(vec![true, true, false])],
            dispatches: vec![],
            main: 0,
        };
        let outcomes: Vec<bool> = Walker::new(&program, 0)
            .take(30)
            .filter(|r| r.class.break_kind() == Some(BreakKind::Conditional))
            .map(|r| r.taken)
            .collect();
        for (i, &t) in outcomes.iter().enumerate() {
            assert_eq!(t, [true, true, false][i % 3], "at {i}");
        }
    }
}
