//! Hot-branch weight curves.
//!
//! Table 1 of the paper characterises each program's branch skew by
//! the number of static conditional branch sites that account for
//! 50 %, 90 %, 99 % and 100 % of executed conditional branches
//! (Q-50..Q-100). [`WeightCurve`] turns those four anchors into a
//! per-site execution-weight vector: sites are ranked hottest-first
//! and each quantile segment's probability mass is spread over its
//! sites with a geometric taper, so the cumulative curve passes
//! through the paper's anchor points while individual weights still
//! decay smoothly.

use crate::profile::HotQuantiles;

/// Per-site execution weights realising a [`HotQuantiles`] curve.
///
/// `weights[i]` is the fraction of all executed conditional branches
/// contributed by the `i`-th hottest site; the vector has `q100`
/// entries and sums to 1.
///
/// # Examples
///
/// ```
/// use nls_trace::{HotQuantiles, WeightCurve};
///
/// let q = HotQuantiles { q50: 3, q90: 175, q99: 296, q100: 1447 };
/// let curve = WeightCurve::from_quantiles(&q);
/// assert_eq!(curve.len(), 1447);
/// // The three hottest sites cover half of all executions:
/// let top3: f64 = curve.weights()[..3].iter().sum();
/// assert!((top3 - 0.5).abs() < 1e-9);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct WeightCurve {
    weights: Vec<f64>,
}

impl WeightCurve {
    /// Builds the weight curve for the given quantile anchors.
    ///
    /// # Panics
    ///
    /// Panics if the quantiles are not monotone (`q50 <= q90 <= q99
    /// <= q100`) or if `q100` is zero.
    pub fn from_quantiles(q: &HotQuantiles) -> Self {
        // nls-lint: allow(panic-reach): fail-fast on workload quantile constants at construction
        assert!(q.q100 > 0, "q100 must be positive");
        // nls-lint: allow(panic-reach): fail-fast on workload quantile constants at construction
        assert!(
            q.q50 <= q.q90 && q.q90 <= q.q99 && q.q99 <= q.q100,
            "quantiles must be monotone: {q:?}"
        );
        // Cap the preallocation: q100 is caller-supplied, and the
        // pushes below grow the vector on demand anyway.
        let mut weights = Vec::with_capacity((q.q100 as usize).min(1 << 16));
        // Segment boundaries in (site-count, cumulative-mass) space.
        let anchors =
            [(0u32, 0.0f64), (q.q50, 0.50), (q.q90, 0.90), (q.q99, 0.99), (q.q100, 1.0)];
        for w in anchors.windows(2) {
            let (start, lo) = w[0];
            let (end, hi) = w[1];
            let n = (end - start) as usize;
            if n == 0 {
                continue;
            }
            fill_geometric(&mut weights, n, hi - lo);
        }
        // Renormalise exactly (the per-segment fills are already
        // exact up to floating-point rounding). The curve is monotone
        // within each segment; across a segment boundary the head of
        // the next segment may exceed the tail of the previous one,
        // but for every realistic quantile profile the segment means
        // drop steeply enough that the curve is globally decreasing.
        let total: f64 = weights.iter().sum();
        for w in &mut weights {
            *w /= total;
        }
        WeightCurve { weights }
    }

    /// The per-site weights, hottest first. Sums to 1.
    pub fn weights(&self) -> &[f64] {
        &self.weights
    }

    /// Number of sites with non-zero weight (= `q100`).
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the curve is empty (never true for valid quantiles).
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Cumulative weight of the `n` hottest sites.
    pub fn cumulative(&self, n: usize) -> f64 {
        self.weights.iter().take(n).sum()
    }

    /// The smallest number of hottest sites whose cumulative weight
    /// reaches `mass` (the inverse of [`Self::cumulative`]); used to
    /// re-measure Q-quantiles from generated traces.
    pub fn sites_for_mass(&self, mass: f64) -> usize {
        let mut acc = 0.0;
        for (i, w) in self.weights.iter().enumerate() {
            acc += w;
            if acc >= mass - 1e-12 {
                return i + 1;
            }
        }
        self.weights.len()
    }

    /// Partitions the curve into consecutive chunks of `chunk` sites
    /// (hottest first) and returns each chunk's total weight. The
    /// last chunk may be short. Used to derive per-procedure dispatch
    /// weights.
    pub fn chunk_masses(&self, chunk: usize) -> Vec<f64> {
        // nls-lint: allow(panic-reach): fail-fast on generator chunk constants at construction
        assert!(chunk > 0, "chunk size must be positive");
        self.weights.chunks(chunk).map(|c| c.iter().sum()).collect()
    }
}

/// Appends `n` weights summing to `mass`, tapering geometrically so
/// the first weight in the segment is about `RATIO_SPAN` times the
/// last. A pure uniform fill would make all sites in a segment
/// equally hot, which produces unnaturally flat plateaus; a gentle
/// geometric taper keeps the within-segment ordering strict while
/// still hitting the segment's total mass exactly.
fn fill_geometric(out: &mut Vec<f64>, n: usize, mass: f64) {
    const RATIO_SPAN: f64 = 8.0;
    if n == 1 {
        out.push(mass);
        return;
    }
    // w_k = w0 * r^k with r chosen so w_{n-1} = w0 / RATIO_SPAN.
    let r = (1.0 / RATIO_SPAN).powf(1.0 / (n as f64 - 1.0));
    let geo_sum = (1.0 - r.powi(n as i32)) / (1.0 - r);
    let w0 = mass / geo_sum;
    let mut w = w0;
    for _ in 0..n {
        out.push(w);
        w *= r;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doduc_q() -> HotQuantiles {
        HotQuantiles { q50: 3, q90: 175, q99: 296, q100: 1447 }
    }

    #[test]
    fn curve_sums_to_one() {
        let c = WeightCurve::from_quantiles(&doduc_q());
        let s: f64 = c.weights().iter().sum();
        assert!((s - 1.0).abs() < 1e-9);
    }

    #[test]
    fn anchors_are_hit() {
        let q = doduc_q();
        let c = WeightCurve::from_quantiles(&q);
        assert!((c.cumulative(q.q50 as usize) - 0.50).abs() < 1e-6);
        assert!((c.cumulative(q.q90 as usize) - 0.90).abs() < 1e-6);
        assert!((c.cumulative(q.q99 as usize) - 0.99).abs() < 1e-6);
        assert!((c.cumulative(q.q100 as usize) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn weights_are_monotone_decreasing_up_to_segment_boundaries() {
        let c = WeightCurve::from_quantiles(&doduc_q());
        let inversions = c.weights().windows(2).filter(|w| w[0] < w[1] - 1e-15).count();
        // At most one inversion per segment boundary (3 boundaries).
        assert!(inversions <= 3, "{inversions} inversions");
    }

    #[test]
    fn sites_for_mass_inverts_cumulative() {
        let q = doduc_q();
        let c = WeightCurve::from_quantiles(&q);
        assert_eq!(c.sites_for_mass(0.50), q.q50 as usize);
        assert_eq!(c.sites_for_mass(0.90), q.q90 as usize);
        assert_eq!(c.sites_for_mass(1.0), q.q100 as usize);
    }

    #[test]
    fn chunk_masses_partition_total() {
        let c = WeightCurve::from_quantiles(&doduc_q());
        let chunks = c.chunk_masses(13);
        let total: f64 = chunks.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert_eq!(chunks.len(), 1447usize.div_ceil(13));
    }

    #[test]
    fn degenerate_single_site() {
        let q = HotQuantiles { q50: 1, q90: 1, q99: 1, q100: 1 };
        let c = WeightCurve::from_quantiles(&q);
        assert_eq!(c.len(), 1);
        assert!((c.weights()[0] - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "monotone")]
    fn non_monotone_quantiles_panic() {
        let q = HotQuantiles { q50: 10, q90: 5, q99: 20, q100: 30 };
        let _ = WeightCurve::from_quantiles(&q);
    }
}
