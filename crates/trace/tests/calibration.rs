//! Calibration: generated traces must reproduce the Table 1
//! statistics their profiles encode.
//!
//! These are the load-bearing tests for the whole reproduction: the
//! NLS-vs-BTB comparison downstream is only meaningful if the
//! synthetic workloads actually exhibit the break density, type mix,
//! taken rate and hot-branch skew of the paper's programs.

use nls_trace::{synthesize, BenchProfile, GenConfig, TraceStats, Walker};

const TRACE_LEN: usize = 1_500_000;

fn measured(profile: &BenchProfile) -> TraceStats {
    let cfg = GenConfig::for_profile(profile);
    let program = synthesize(profile, &cfg);
    let mut w = Walker::new(&program, 0xfeed);
    TraceStats::from_trace(w.by_ref().take(TRACE_LEN))
}

fn assert_close(name: &str, what: &str, got: f64, want: f64, rel_tol: f64) {
    let err = (got - want).abs() / want.max(1e-9);
    assert!(
        err <= rel_tol,
        "{name}: {what} = {got:.2} vs Table 1 {want:.2} (rel err {err:.2} > {rel_tol})"
    );
}

#[test]
fn break_density_matches_table1() {
    for p in BenchProfile::all() {
        let s = measured(&p);
        assert_close(p.name, "%breaks", s.pct_breaks(), p.pct_breaks, 0.20);
    }
}

#[test]
fn taken_rate_matches_table1() {
    for p in BenchProfile::all() {
        let s = measured(&p);
        assert_close(p.name, "%taken", s.pct_taken(), p.pct_taken, 0.20);
    }
}

#[test]
fn break_mix_matches_table1() {
    for p in BenchProfile::all() {
        let s = measured(&p);
        let mix = s.mix_percent();
        assert_close(p.name, "%cond", mix[0], p.mix.cond, 0.15);
        // Call/return symmetry is structural; compare against the
        // paper's average of the two columns. Very small fractions
        // (espresso calls ~2 % of breaks) get a wider relative band:
        // the one structural call per dispatch dominates them.
        let call_want = (p.mix.call + p.mix.ret) / 2.0;
        let call_tol = if call_want < 3.0 { 0.55 } else { 0.35 };
        assert_close(p.name, "%call", mix[3], call_want, call_tol);
        assert_close(p.name, "%ret", mix[4], call_want, call_tol);
        if p.mix.indirect >= 1.0 {
            assert_close(p.name, "%ij", mix[1], p.mix.indirect, 0.45);
        }
    }
}

#[test]
fn hot_branch_quantiles_match_table1() {
    for p in BenchProfile::all() {
        let s = measured(&p);
        // Q-50 and Q-90 drive predictor working-set behaviour. Wide
        // tolerances: the dispatch tree adds hot sites the analytic
        // grouping cannot account for exactly.
        let q50 = s.quantile(0.50) as f64;
        let q90 = s.quantile(0.90) as f64;
        assert!(
            q50 <= 3.0 * p.quantiles.q50 as f64 + 10.0 && q50 >= 0.2 * p.quantiles.q50 as f64,
            "{}: Q50 {} vs {}",
            p.name,
            q50,
            p.quantiles.q50
        );
        assert!(
            q90 <= 2.5 * p.quantiles.q90 as f64 && q90 >= 0.3 * p.quantiles.q90 as f64,
            "{}: Q90 {} vs {}",
            p.name,
            q90,
            p.quantiles.q90
        );
    }
}

#[test]
fn working_set_ordering_is_preserved() {
    // The paper's key workload distinction: gcc/cfront/groff have far
    // larger branch working sets than doduc/espresso/li. Capacity
    // effects in the BTB depend on this ordering.
    let q90 = |p: &BenchProfile| measured(p).quantile(0.90);
    let gcc = q90(&BenchProfile::gcc());
    let cfront = q90(&BenchProfile::cfront());
    let li = q90(&BenchProfile::li());
    let espresso = q90(&BenchProfile::espresso());
    assert!(gcc > 3 * espresso, "gcc {gcc} vs espresso {espresso}");
    assert!(cfront > 3 * li, "cfront {cfront} vs li {li}");
}

#[test]
fn code_footprints_are_ordered_like_the_paper() {
    // gcc/cfront have much larger static code than li/espresso; this
    // is what produces their high instruction-cache miss rates.
    let size = |p: &BenchProfile| synthesize(p, &GenConfig::for_profile(p)).static_insts();
    assert!(size(&BenchProfile::gcc()) > 2 * size(&BenchProfile::espresso()));
    assert!(size(&BenchProfile::cfront()) > 2 * size(&BenchProfile::li()));
}

#[test]
fn print_measured_table1() {
    // Not an assertion test: prints the measured Table 1 for eyeball
    // comparison when run with --nocapture.
    println!(
        "{:<9} {:>8} {:>7} {:>7} {:>7} {:>7} {:>8} {:>7} | {:>6} {:>5} {:>5} {:>6} {:>5}",
        "program",
        "%breaks",
        "Q-50",
        "Q-90",
        "Q-99",
        "Q-100",
        "static",
        "%taken",
        "%CBr",
        "%IJ",
        "%Br",
        "%Call",
        "%Ret"
    );
    for p in BenchProfile::all() {
        let s = measured(&p);
        let m = s.mix_percent();
        println!(
            "{:<9} {:>8.2} {:>7} {:>7} {:>7} {:>7} {:>8} {:>7.2} | {:>6.2} {:>5.2} {:>5.2} {:>6.2} {:>5.2}",
            p.name,
            s.pct_breaks(),
            s.quantile(0.50),
            s.quantile(0.90),
            s.quantile(0.99),
            s.q100(),
            synthesize(&p, &GenConfig::for_profile(&p)).static_cond_sites(),
            s.pct_taken(),
            m[0],
            m[1],
            m[2],
            m[3],
            m[4],
        );
    }
}
