//! Corruption-fuzz suite for the trace file layer.
//!
//! Seeded fault injection (byte flips, truncations, record
//! duplications) over an encoded trace, crossed with every
//! [`RecoveryPolicy`]. The contract under test: **no input ever
//! panics** — every corruption either recovers per policy or surfaces
//! as a typed [`TraceFileError`] — and each policy's exact behaviour
//! is pinned down at every field boundary.

use nls_trace::faults::{Fault, FaultInjector};
use nls_trace::{
    read_trace, read_trace_with, write_trace, Addr, BreakKind, RecoveryPolicy, TraceFileError,
    TraceReader, TraceRecord, TRACE_HEADER_BYTES, TRACE_RECORD_BYTES,
};

/// A small trace exercising every record kind and both directions.
fn base_trace() -> Vec<TraceRecord> {
    let mut records = Vec::new();
    for i in 0..8u64 {
        let pc = Addr::new(0x1000 + 32 * i);
        records.push(TraceRecord::sequential(pc));
        records.push(TraceRecord::branch(
            Addr::new(0x1000 + 32 * i + 4),
            BreakKind::Conditional,
            i % 2 == 0,
            Addr::new(0x2000 + 32 * i),
        ));
        records.push(TraceRecord::branch(
            Addr::new(0x2000 + 32 * i),
            BreakKind::Call,
            true,
            Addr::new(0x3000),
        ));
        records.push(TraceRecord::branch(
            Addr::new(0x3000),
            BreakKind::Return,
            true,
            Addr::new(0x2000 + 32 * i + 4),
        ));
        records.push(TraceRecord::branch(
            Addr::new(0x2000 + 32 * i + 4),
            BreakKind::IndirectJump,
            true,
            Addr::new(0x1000 + 32 * (i + 1)),
        ));
        records.push(TraceRecord::branch(
            Addr::new(0x1000 + 32 * (i + 1)),
            BreakKind::Unconditional,
            true,
            Addr::new(0x1000 + 32 * (i + 1) + 8),
        ));
    }
    records
}

fn encoded() -> Vec<u8> {
    let mut buf = Vec::new();
    write_trace(&mut buf, base_trace()).unwrap();
    buf
}

/// Header errors are the only legitimate failures under the
/// truncate-at-error policy (there is no frame stream to salvage
/// without a valid header).
fn is_header_error(e: &TraceFileError) -> bool {
    matches!(
        e,
        TraceFileError::BadMagic(_)
            | TraceFileError::BadVersion(_)
            | TraceFileError::BadHeader(_)
    )
}

#[test]
fn one_hundred_fifty_seeded_corruptions_never_panic() {
    let pristine = encoded();
    let mut variants = 0u32;
    for seed in 0..150u64 {
        let mut data = pristine.clone();
        let fault = FaultInjector::new(seed).any_fault(data.len());
        fault.apply(&mut data);
        variants += 1;

        // Strict policy: decodes fully or returns a typed error.
        // Reaching the match at all proves no panic occurred.
        match read_trace(&data[..]) {
            Ok(records) => assert!(records.len() <= base_trace().len() + 1),
            Err(e) => {
                let _ = e.to_string(); // every error must render
            }
        }

        // Unbounded skip: only header damage or truncation may fail.
        match read_trace_with(&data[..], RecoveryPolicy::SkipRecord { max_skips: u64::MAX }) {
            Ok(_) => {}
            Err(e) => assert!(
                is_header_error(&e) || matches!(e, TraceFileError::BadRecord(_)),
                "seed {seed}: skip policy failed with unexpected {e}"
            ),
        }

        // Truncate-at-error: always recovers unless the header is bad.
        match read_trace_with(&data[..], RecoveryPolicy::TruncateAtError) {
            Ok(_) => {}
            Err(e) => assert!(
                is_header_error(&e),
                "seed {seed}: truncate policy must absorb body damage, got {e}"
            ),
        }
    }
    assert!(variants >= 100, "the fuzz matrix must cover at least 100 variants");
}

#[test]
fn truncation_at_every_byte_boundary() {
    let pristine = encoded();
    for cut in 0..pristine.len() {
        let data = &pristine[..cut];

        // Strict reads of any proper prefix must fail with a typed
        // error — header class below the header size, record class
        // above it.
        match read_trace(data) {
            Ok(_) => panic!("cut {cut}: a truncated trace must not read cleanly"),
            Err(TraceFileError::BadHeader(_)) => assert!(cut < TRACE_HEADER_BYTES),
            Err(TraceFileError::BadRecord(_)) => assert!(cut >= TRACE_HEADER_BYTES),
            Err(e) => panic!("cut {cut}: unexpected error class {e}"),
        }

        // The truncate policy keeps exactly the whole frames.
        if cut >= TRACE_HEADER_BYTES {
            let records = read_trace_with(data, RecoveryPolicy::TruncateAtError).unwrap();
            assert_eq!(records.len(), (cut - TRACE_HEADER_BYTES) / TRACE_RECORD_BYTES);
            assert_eq!(records[..], base_trace()[..records.len()]);
        }
    }
}

#[test]
fn every_header_byte_flip_is_rejected_with_the_right_class() {
    let pristine = encoded();
    for offset in 0..TRACE_HEADER_BYTES {
        let mut data = pristine.clone();
        Fault::ByteFlip { offset, mask: 0x80 }.apply(&mut data);
        match (offset, read_trace(&data[..])) {
            (0..=3, Err(TraceFileError::BadMagic(_))) => {}
            (4..=7, Err(TraceFileError::BadVersion(_))) => {}
            // A flipped count either overflows (BadHeader) or claims
            // more records than the body holds (BadRecord).
            (8..=15, Err(TraceFileError::BadHeader(_) | TraceFileError::BadRecord(_))) => {}
            (_, r) => panic!("header offset {offset}: unexpected outcome {r:?}"),
        }
    }
}

#[test]
fn skip_policy_recovers_exactly_the_intact_records() {
    let pristine = encoded();
    let n = base_trace().len();
    // Corrupt the kind tags of records 1 and 3.
    let mut data = pristine.clone();
    for index in [1usize, 3] {
        data[TRACE_HEADER_BYTES + index * TRACE_RECORD_BYTES] = 0xee;
    }

    let records =
        read_trace_with(&data[..], RecoveryPolicy::SkipRecord { max_skips: 2 }).unwrap();
    assert_eq!(records.len(), n - 2);
    let expected: Vec<_> = base_trace()
        .into_iter()
        .enumerate()
        .filter(|(i, _)| *i != 1 && *i != 3)
        .map(|(_, r)| r)
        .collect();
    assert_eq!(records, expected);

    // One skip fewer than needed fails with the typed overflow.
    let out = read_trace_with(&data[..], RecoveryPolicy::SkipRecord { max_skips: 1 });
    assert!(matches!(out, Err(TraceFileError::TooCorrupt { skipped: 2, limit: 1 })));
}

#[test]
fn duplicated_records_parse_and_displace_the_tail() {
    let mut data = encoded();
    Fault::DuplicateRecord { index: 2 }.apply(&mut data);
    let records = read_trace(&data[..]).unwrap();
    let original = base_trace();
    // The count is unchanged, the duplicate appears back-to-back and
    // the final original record is pushed out past the count.
    assert_eq!(records.len(), original.len());
    assert_eq!(records[2], records[3]);
    assert_eq!(records[..3], original[..3]);
    assert_eq!(records[3..], original[2..original.len() - 1]);
}

#[test]
fn streaming_reader_tracks_recovery_statistics() {
    let mut data = encoded();
    for index in [0usize, 5, 9] {
        data[TRACE_HEADER_BYTES + index * TRACE_RECORD_BYTES] = 0xee;
    }
    let mut reader =
        TraceReader::with_policy(&data[..], RecoveryPolicy::SkipRecord { max_skips: 10 })
            .unwrap();
    let good = reader.by_ref().filter(|r| r.is_ok()).count();
    assert_eq!(good, base_trace().len() - 3);
    assert_eq!(reader.records_skipped(), 3);
    assert_eq!(reader.declared_records(), base_trace().len() as u64);
    assert!(!reader.truncated());
}

#[test]
fn random_body_flips_are_absorbed_by_the_truncate_policy() {
    let pristine = encoded();
    for seed in 1000..1100u64 {
        let mut data = pristine.clone();
        let mut inj = FaultInjector::new(seed);
        // Pile up three independent flips to stress multi-error input.
        for _ in 0..3 {
            inj.byte_flip(data.len()).apply(&mut data);
        }
        match read_trace_with(&data[..], RecoveryPolicy::TruncateAtError) {
            Ok(records) => assert!(records.len() <= base_trace().len()),
            Err(e) => assert!(is_header_error(&e), "seed {seed}: {e}"),
        }
    }
}
