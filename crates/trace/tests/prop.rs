//! Property tests for the trace layer: file round trips, weight
//! curves and walker coherence over randomly generated profiles.

use proptest::prelude::*;

use nls_trace::{
    read_trace, synthesize, write_trace, Addr, BenchProfile, BreakKind, BreakMix, GenConfig,
    HotQuantiles, TraceRecord, Walker, WeightCurve,
};

fn arb_record() -> impl Strategy<Value = TraceRecord> {
    let addr = (0u64..1_000_000).prop_map(Addr::from_inst_index);
    prop_oneof![
        addr.clone().prop_map(TraceRecord::sequential),
        (addr.clone(), addr.clone(), any::<bool>()).prop_map(|(pc, t, taken)| {
            TraceRecord::branch(pc, BreakKind::Conditional, taken, t)
        }),
        (addr.clone(), addr.clone())
            .prop_map(|(pc, t)| { TraceRecord::branch(pc, BreakKind::Call, true, t) }),
        (addr.clone(), addr.clone())
            .prop_map(|(pc, t)| { TraceRecord::branch(pc, BreakKind::Return, true, t) }),
        (addr.clone(), addr)
            .prop_map(|(pc, t)| { TraceRecord::branch(pc, BreakKind::IndirectJump, true, t) }),
    ]
}

/// A random but structurally valid profile.
fn arb_profile() -> impl Strategy<Value = BenchProfile> {
    (
        2u32..40,                                 // q50
        1u32..80,                                 // q90 - q50
        1u32..200,                                // q99 - q90
        1u32..800,                                // q100 - q99
        0u32..3000,                               // static - q100
        5.0f64..20.0,                             // pct_breaks
        35.0f64..70.0,                            // pct_taken
        (1.0f64..20.0, 0.0f64..4.0, 1.0f64..8.0), // call%, ij%, uncond%
    )
        .prop_map(
            |(q50, d90, d99, d100, cold, pct_breaks, pct_taken, (call, ij, uncond))| {
                let q90 = q50 + d90;
                let q99 = q90 + d99;
                let q100 = q99 + d100;
                let cond = 100.0 - 2.0 * call - ij - uncond;
                BenchProfile {
                    name: "random",
                    pct_breaks,
                    quantiles: HotQuantiles { q50, q90, q99, q100 },
                    static_cond_sites: q100 + cold,
                    pct_taken,
                    mix: BreakMix { cond, indirect: ij, uncond, call, ret: call },
                }
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn trace_file_round_trips(records in prop::collection::vec(arb_record(), 0..200)) {
        let mut buf = Vec::new();
        write_trace(&mut buf, records.iter().copied()).expect("write");
        let back = read_trace(&buf[..]).expect("read");
        prop_assert_eq!(back, records);
    }

    #[test]
    fn weight_curves_hit_their_anchors(p in arb_profile()) {
        let q = p.quantiles;
        let curve = WeightCurve::from_quantiles(&q);
        prop_assert_eq!(curve.len(), q.q100 as usize);
        let total: f64 = curve.weights().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((curve.cumulative(q.q50 as usize) - 0.5).abs() < 1e-6);
        prop_assert!((curve.cumulative(q.q90 as usize) - 0.9).abs() < 1e-6);
        prop_assert!(curve.weights().iter().all(|w| *w >= 0.0));
    }

    #[test]
    fn synthesized_programs_validate_and_walk_coherently(p in arb_profile(), seed in any::<u64>()) {
        let cfg = GenConfig { seed, ..GenConfig::default() };
        let program = synthesize(&p, &cfg);
        prop_assert_eq!(program.validate(), Ok(()));
        // Walk a slice and check PC coherence + call/return nesting.
        let mut prev: Option<TraceRecord> = None;
        let mut shadow: Vec<Addr> = Vec::new();
        for r in Walker::new(&program, seed ^ 0xdead).take(20_000) {
            if let Some(prev) = prev {
                prop_assert_eq!(prev.next_pc(), r.pc);
            }
            match r.class.break_kind() {
                Some(BreakKind::Call) => shadow.push(r.pc.next()),
                Some(BreakKind::Return) => {
                    if let Some(expected) = shadow.pop() {
                        prop_assert_eq!(r.target, expected);
                    }
                }
                _ => {}
            }
            prev = Some(r);
        }
    }

    #[test]
    fn static_site_count_respects_the_profile(p in arb_profile()) {
        let program = synthesize(&p, &GenConfig::default());
        let got = program.static_cond_sites() as f64;
        let want = p.static_cond_sites as f64;
        // The builder hits the static budget within its structural
        // granularity (one cold procedure).
        prop_assert!(got >= 0.8 * want && got <= 1.35 * want + 200.0,
            "static sites {got} vs profile {want}");
    }
}
