//! Branch-heavy workload study (the paper's §7 argument).
//!
//! The paper's motivating observation: programs with many static
//! branch sites (gcc, cfront, groff) overflow a small BTB, while the
//! NLS-table's cheaper entries let it hold many more predictors at
//! the same cost — and, unlike the BTB, its accuracy keeps improving
//! as the instruction cache grows. This example sweeps cache size
//! for one branch-heavy and one branch-light program and prints the
//! trend.
//!
//! ```text
//! cargo run --release --example branch_heavy
//! ```

use nextline::core::{cross, run_sweep, EngineSpec, PenaltyModel, SweepConfig};
use nextline::icache::CacheConfig;
use nextline::trace::BenchProfile;

fn main() {
    let caches: Vec<CacheConfig> = [8u64, 16, 32]
        .iter()
        .flat_map(|&kb| [CacheConfig::paper(kb, 1), CacheConfig::paper(kb, 4)])
        .collect();
    let engines = [EngineSpec::btb(128, 1), EngineSpec::nls_table(1024)];
    let benches = [BenchProfile::gcc(), BenchProfile::espresso()];
    let runs = cross(&benches, &caches, &engines);
    let cfg = SweepConfig { trace_len: 2_000_000, seed: 7 };
    let results = run_sweep(&runs, &cfg);
    let m = PenaltyModel::paper();

    for bench in &benches {
        println!("\n{} (Q-90 = {} hot branch sites):", bench.name, bench.quantiles.q90);
        println!("{:<12} {:>16} {:>16}", "cache", "BTB-128 BEP", "NLS-1024 BEP");
        for cache in &caches {
            let pick = |engine: &str| {
                results
                    .iter()
                    .find(|r| {
                        r.bench == bench.name && r.cache == cache.label() && r.engine == engine
                    })
                    .expect("result present")
            };
            println!(
                "{:<12} {:>16.3} {:>16.3}",
                cache.label(),
                pick("128 direct BTB").bep(&m),
                pick("1024 NLS table").bep(&m),
            );
        }
    }

    println!(
        "\nReading the trend: the BTB column is flat (its accuracy never benefits\n\
         from a better cache), while the NLS column falls as the cache grows —\n\
         and the gap between the two is much wider on gcc than on espresso."
    );
}
