//! Cost/performance design-space exploration.
//!
//! Sweeps NLS-table sizes and BTB organisations, prices each with
//! the register-bit-equivalent area model, and prints the
//! cost-vs-BEP frontier the paper's §6/§7 argue from: every extra
//! RBE spent on an NLS-table buys more fetch accuracy than the same
//! RBE spent on BTB entries.
//!
//! ```text
//! cargo run --release --example design_space
//! ```

use nextline::core::{average, cross, run_sweep, EngineSpec, PenaltyModel, SweepConfig};
use nextline::cost::rbe::{btb_rbe, nls_table_rbe, CacheGeometry};
use nextline::icache::CacheConfig;
use nextline::trace::BenchProfile;

fn main() {
    let cache = CacheConfig::paper(16, 1);
    let geometry = CacheGeometry::paper(16, 1);
    let engines = [
        EngineSpec::nls_table(256),
        EngineSpec::nls_table(512),
        EngineSpec::nls_table(1024),
        EngineSpec::nls_table(2048),
        EngineSpec::nls_table(4096),
        EngineSpec::btb(128, 1),
        EngineSpec::btb(128, 4),
        EngineSpec::btb(256, 1),
        EngineSpec::btb(256, 4),
    ];
    let runs = cross(&BenchProfile::all(), &[cache], &engines);
    let cfg = SweepConfig { trace_len: 1_000_000, seed: 3 };
    let results = run_sweep(&runs, &cfg);
    let m = PenaltyModel::paper();

    println!("design point                RBE cost   avg BEP   avg %MfB");
    let mut frontier: Vec<(String, f64, f64)> = Vec::new();
    for spec in &engines {
        let label = spec.build(cache).label();
        let per: Vec<_> = results.iter().filter(|r| r.engine == label).cloned().collect();
        let avg = average(&per);
        let rbe = match spec {
            EngineSpec::NlsTable { entries, .. } => nls_table_rbe(*entries as u64, geometry),
            EngineSpec::Btb { entries, assoc, .. } => btb_rbe(*entries as u64, *assoc),
            _ => unreachable!("only tables and BTBs in this sweep"),
        };
        println!(
            "{:<26} {:>9.0} {:>9.3} {:>10.2}",
            label,
            rbe,
            avg.bep(&m),
            avg.pct_misfetched()
        );
        frontier.push((label, rbe, avg.bep(&m)));
    }

    // Report the Pareto frontier (no other point is both cheaper and better).
    frontier.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
    let mut best = f64::INFINITY;
    println!("\nPareto frontier (cheapest-first):");
    for (label, rbe, bep) in &frontier {
        if *bep < best {
            best = *bep;
            println!("  {label:<26} {rbe:>9.0} RBE  BEP {bep:.3}");
        }
    }
}
