//! Quick start: simulate the paper's headline comparison on one
//! workload.
//!
//! Builds a gcc-like synthetic workload, runs it through the
//! 1024-entry NLS-table and an equal-cost 128-entry direct-mapped
//! BTB (plus the double-cost 256-entry 4-way BTB), and prints the
//! paper's metrics: %MfB, %MpB, branch execution penalty and CPI.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use nextline::core::{run_one, EngineSpec, PenaltyModel, RunSpec, SweepConfig};
use nextline::icache::CacheConfig;
use nextline::trace::BenchProfile;

fn main() {
    let bench = BenchProfile::gcc();
    println!(
        "workload: {} ({} static conditional branch sites, {:.1}% breaks)",
        bench.name, bench.static_cond_sites, bench.pct_breaks
    );

    let spec = RunSpec {
        bench,
        cache: CacheConfig::paper(16, 1),
        engines: vec![
            EngineSpec::btb(128, 1),
            EngineSpec::btb(256, 4),
            EngineSpec::nls_table(1024),
        ],
    };
    let cfg = SweepConfig { trace_len: 2_000_000, seed: 42 };
    println!("simulating {} instructions on a 16K direct-mapped i-cache...\n", cfg.trace_len);

    let m = PenaltyModel::paper();
    println!(
        "{:<16} {:>8} {:>8} {:>8} {:>8} {:>8}",
        "engine", "%MfB", "%MpB", "BEP", "miss%", "CPI"
    );
    for r in run_one(&spec, &cfg) {
        println!(
            "{:<16} {:>8.2} {:>8.2} {:>8.3} {:>8.2} {:>8.3}",
            r.engine,
            r.pct_misfetched(),
            r.pct_mispredicted(),
            r.bep(&m),
            r.miss_pct(),
            r.cpi(&m),
        );
    }

    println!(
        "\nThe NLS table stores (line, set) cache pointers instead of full target\n\
         addresses, so at equal silicon cost it holds 8x the entries of the BTB —\n\
         which is why its misfetch rate is lower on branch-heavy code like gcc."
    );
}
