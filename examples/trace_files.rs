//! Recording and replaying traces.
//!
//! The simulator is trace-driven: any PC-coherent instruction stream
//! can be fed to the engines, not just the built-in synthetic
//! workloads. This example records a workload into the compact
//! binary `NLST` format, reads it back, verifies the round trip, and
//! replays it through an engine — the workflow for users who have
//! their own instrumentation traces.
//!
//! ```text
//! cargo run --release --example trace_files
//! ```

use nextline::core::{drive, EngineSpec, FetchEngine, PenaltyModel};
use nextline::icache::CacheConfig;
use nextline::trace::{
    read_trace, synthesize, write_trace, BenchProfile, GenConfig, TraceStats, Walker,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let profile = BenchProfile::li();
    let program = synthesize(&profile, &GenConfig::for_profile(&profile));
    let records = Walker::new(&program, 99).take(300_000).collect::<Vec<_>>();

    // Record to a file.
    let path = std::env::temp_dir().join("nextline_demo.nlst");
    let file = std::fs::File::create(&path)?;
    let written = write_trace(file, records.iter().copied())?;
    let bytes = std::fs::metadata(&path)?.len();
    println!(
        "wrote {written} records ({bytes} bytes, {:.1} B/record) to {}",
        bytes as f64 / written as f64,
        path.display()
    );

    // Read back and verify.
    let replayed = read_trace(std::fs::File::open(&path)?)?;
    assert_eq!(replayed, records, "round trip must be lossless");

    // Measure it like Table 1 does.
    let stats = TraceStats::from_trace(replayed.iter().copied());
    println!(
        "replayed trace: {:.2}% breaks, {:.2}% of conditionals taken, {} hot sites",
        stats.pct_breaks(),
        stats.pct_taken(),
        stats.q100()
    );

    // Replay through a fetch engine.
    let mut engines: Vec<Box<dyn FetchEngine + Send>> =
        vec![EngineSpec::nls_table(1024).build(CacheConfig::paper(8, 1))];
    drive(&replayed, &mut engines);
    let r = engines[0].result(profile.name);
    let m = PenaltyModel::paper();
    println!("replay through {}: BEP {:.3}, CPI {:.3}", r.engine, r.bep(&m), r.cpi(&m));

    std::fs::remove_file(&path)?;
    Ok(())
}
