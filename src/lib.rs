//! **nextline** — next cache line and set (NLS) fetch prediction.
//!
//! A from-scratch Rust reproduction of Calder & Grunwald, *"Next
//! Cache Line and Set Prediction"*, ISCA 1995: instead of storing a
//! branch's full target address (as a branch target buffer does), an
//! NLS predictor stores a *pointer into the instruction cache* —
//! line, set and instruction offset — which is smaller, tag-less,
//! and fast to look up. The paper shows a 1024-entry NLS-table
//! matching or beating BTBs of equal or twice the cost.
//!
//! This crate is a facade re-exporting the workspace:
//!
//! * [`trace`] — instruction traces, the six Table 1 benchmark
//!   profiles and the synthetic workload generator.
//! * [`icache`] — the instruction-cache simulator.
//! * [`predictors`] — PHTs, return stack, BTB and NLS structures.
//! * [`core`] — fetch engines, misfetch/mispredict metrics, sweeps.
//! * [`cost`] — RBE area and CACTI-style access-time models.
//!
//! # Quick start
//!
//! Compare the paper's headline pair — a 1024-entry NLS-table versus
//! an equal-cost 128-entry direct-mapped BTB — on a gcc-like
//! workload:
//!
//! ```
//! use nextline::core::{run_one, EngineSpec, PenaltyModel, RunSpec, SweepConfig};
//! use nextline::icache::CacheConfig;
//! use nextline::trace::BenchProfile;
//!
//! let spec = RunSpec {
//!     bench: BenchProfile::gcc(),
//!     cache: CacheConfig::paper(16, 1),
//!     engines: vec![EngineSpec::btb(128, 1), EngineSpec::nls_table(1024)],
//! };
//! let results = run_one(&spec, &SweepConfig { trace_len: 400_000, seed: 1 });
//! let m = PenaltyModel::paper();
//! let (btb, nls) = (&results[0], &results[1]);
//! // gcc's large branch working set overflows the 128-entry BTB:
//! assert!(nls.pct_misfetched() < btb.pct_misfetched());
//! assert!(nls.bep(&m) < btb.bep(&m));
//! ```
//!
//! The `nls-bench` crate regenerates every table and figure of the
//! paper (`cargo run --release -p nls-bench --bin repro_all`); see
//! DESIGN.md for the experiment index and EXPERIMENTS.md for
//! paper-vs-measured results.

/// Fetch engines, metrics and sweep drivers (re-export of
/// [`nls_core`]).
pub mod core {
    pub use nls_core::*;
}

/// Cost models: RBE area and access time (re-export of [`nls_cost`]).
pub mod cost {
    pub use nls_cost::{access_time, rbe};
}

/// Instruction-cache simulation (re-export of [`nls_icache`]).
pub mod icache {
    pub use nls_icache::*;
}

/// Prediction structures (re-export of [`nls_predictors`]).
pub mod predictors {
    pub use nls_predictors::*;
}

/// Traces and synthetic workloads (re-export of [`nls_trace`]).
pub mod trace {
    pub use nls_trace::*;
}
