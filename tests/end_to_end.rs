//! End-to-end integration: full synthetic workloads through every
//! architecture, checking cross-engine invariants the paper's
//! methodology depends on.

use nextline::core::{
    cross, run_one, run_sweep, EngineSpec, PenaltyModel, RunSpec, SweepConfig,
};
use nextline::icache::CacheConfig;
use nextline::trace::BenchProfile;

fn cfg() -> SweepConfig {
    SweepConfig { trace_len: 300_000, seed: 0xabcd }
}

#[test]
fn every_benchmark_runs_through_every_engine() {
    let engines = vec![
        EngineSpec::btb(128, 1),
        EngineSpec::btb(256, 4),
        EngineSpec::nls_table(1024),
        EngineSpec::nls_cache(2),
        EngineSpec::Johnson { preds_per_line: 2 },
    ];
    let m = PenaltyModel::paper();
    for bench in BenchProfile::all() {
        let spec = RunSpec {
            bench: bench.clone(),
            cache: CacheConfig::paper(16, 1),
            engines: engines.clone(),
        };
        for r in run_one(&spec, &cfg()) {
            assert_eq!(r.instructions, 300_000, "{} {}", bench.name, r.engine);
            assert!(r.breaks > 0);
            assert!(r.misfetches + r.mispredicts <= r.breaks);
            assert!(r.bep(&m) >= 0.0 && r.bep(&m) < 4.0, "{}: BEP {}", r.engine, r.bep(&m));
            assert!(r.cpi(&m) >= 1.0);
            assert_eq!(r.icache.accesses, r.instructions);
        }
    }
}

#[test]
fn runs_are_deterministic() {
    let spec = RunSpec {
        bench: BenchProfile::groff(),
        cache: CacheConfig::paper(8, 4),
        engines: vec![EngineSpec::nls_table(1024), EngineSpec::btb(128, 1)],
    };
    assert_eq!(run_one(&spec, &cfg()), run_one(&spec, &cfg()));
}

#[test]
fn pht_mispredicts_are_engine_invariant() {
    // The paper isolates fetch effects by giving both architectures
    // the identical PHT: "The accuracy of the pattern history table
    // is the same for both the BTB and NLS architectures." In this
    // simulator the conditional direction stream is engine
    // independent, so conditional-mispredict counts must be close
    // (small differences come only from non-conditional breaks:
    // indirect jumps and returns).
    for bench in [BenchProfile::espresso(), BenchProfile::doduc()] {
        // doduc/espresso have almost no indirect jumps, so total
        // mispredicts are nearly pure PHT for them.
        let spec = RunSpec {
            bench: bench.clone(),
            cache: CacheConfig::paper(16, 1),
            engines: vec![EngineSpec::btb(256, 4), EngineSpec::nls_table(2048)],
        };
        let results = run_one(&spec, &cfg());
        let a = results[0].mispredicts as f64;
        let b = results[1].mispredicts as f64;
        let rel = (a - b).abs() / a.max(b);
        assert!(rel < 0.08, "{}: mispredicts {a} vs {b}", bench.name);
    }
}

#[test]
fn btb_bep_does_not_depend_on_the_cache() {
    let m = PenaltyModel::paper();
    let caches = [CacheConfig::paper(8, 1), CacheConfig::paper(32, 4)];
    let runs = cross(&[BenchProfile::gcc()], &caches, &[EngineSpec::btb(128, 1)]);
    let results = run_sweep(&runs, &cfg());
    let a = results[0].bep(&m);
    let b = results[1].bep(&m);
    assert!((a - b).abs() < 1e-9, "BTB BEP must be cache-invariant: {a} vs {b}");
}

#[test]
fn nls_bep_improves_with_the_cache() {
    let m = PenaltyModel::paper();
    let caches = [CacheConfig::paper(8, 1), CacheConfig::paper(32, 4)];
    let runs = cross(&[BenchProfile::gcc()], &caches, &[EngineSpec::nls_table(1024)]);
    let results = run_sweep(&runs, &cfg());
    assert!(
        results[1].bep(&m) < results[0].bep(&m),
        "32K 4-way ({}) should beat 8K direct ({})",
        results[1].bep(&m),
        results[0].bep(&m)
    );
}

#[test]
fn nls_table_beats_equal_cost_btb_on_branch_heavy_code() {
    let m = PenaltyModel::paper();
    for bench in BenchProfile::branch_heavy() {
        let spec = RunSpec {
            bench: bench.clone(),
            cache: CacheConfig::paper(32, 1),
            engines: vec![EngineSpec::btb(128, 1), EngineSpec::nls_table(1024)],
        };
        let results = run_one(&spec, &cfg());
        assert!(
            results[1].bep(&m) < results[0].bep(&m),
            "{}: NLS {} vs BTB {}",
            bench.name,
            results[1].bep(&m),
            results[0].bep(&m)
        );
    }
}

#[test]
fn nls_table_beats_nls_cache_on_average() {
    let m = PenaltyModel::paper();
    let mut table_total = 0.0;
    let mut cache_total = 0.0;
    for bench in BenchProfile::all() {
        let spec = RunSpec {
            bench: bench.clone(),
            cache: CacheConfig::paper(16, 1),
            engines: vec![EngineSpec::nls_table(1024), EngineSpec::nls_cache(2)],
        };
        let results = run_one(&spec, &cfg());
        table_total += results[0].bep(&m);
        cache_total += results[1].bep(&m);
    }
    assert!(
        table_total < cache_total,
        "decoupled table ({table_total}) must beat coupled cache ({cache_total})"
    );
}

#[test]
fn johnson_design_trails_the_nls_table() {
    let m = PenaltyModel::paper();
    let mut johnson_total = 0.0;
    let mut table_total = 0.0;
    for bench in BenchProfile::all() {
        let spec = RunSpec {
            bench: bench.clone(),
            cache: CacheConfig::paper(16, 1),
            engines: vec![
                EngineSpec::Johnson { preds_per_line: 2 },
                EngineSpec::nls_table(1024),
            ],
        };
        let results = run_one(&spec, &cfg());
        johnson_total += results[0].bep(&m);
        table_total += results[1].bep(&m);
    }
    assert!(
        table_total < johnson_total,
        "NLS-table ({table_total}) must beat Johnson's design ({johnson_total})"
    );
}
