//! Cross-crate integration: hand-crafted micro-traces with exactly
//! known misfetch/mispredict outcomes, driven through the public
//! facade. These pin the end-to-end semantics of the paper's
//! penalty accounting.

use nextline::core::{drive, EngineSpec, FetchEngine};
use nextline::icache::CacheConfig;
use nextline::trace::{Addr, BreakKind, TraceRecord};

fn seq(pc: u64) -> TraceRecord {
    TraceRecord::sequential(Addr::new(pc))
}

fn br(pc: u64, kind: BreakKind, taken: bool, target: u64) -> TraceRecord {
    TraceRecord::branch(Addr::new(pc), kind, taken, Addr::new(target))
}

/// A tight loop: branch at 0x108 back to 0x100, three iterations,
/// then fall through.
fn loop_trace() -> Vec<TraceRecord> {
    let mut t = Vec::new();
    for i in 0..3 {
        t.push(seq(0x100));
        t.push(seq(0x104));
        t.push(br(0x108, BreakKind::Conditional, i < 2, 0x100));
    }
    t.push(seq(0x10c));
    t
}

#[test]
fn all_engines_agree_on_instruction_and_break_counts() {
    let trace = loop_trace();
    let mut engines: Vec<Box<dyn FetchEngine + Send>> = vec![
        EngineSpec::btb(128, 1).build(CacheConfig::paper(8, 1)),
        EngineSpec::nls_table(1024).build(CacheConfig::paper(8, 1)),
        EngineSpec::nls_cache(2).build(CacheConfig::paper(8, 1)),
        EngineSpec::Johnson { preds_per_line: 2 }.build(CacheConfig::paper(8, 1)),
    ];
    drive(&trace, &mut engines);
    for e in &engines {
        let r = e.result("micro");
        assert_eq!(r.instructions, trace.len() as u64, "{}", r.engine);
        assert_eq!(r.breaks, 3, "{}", r.engine);
        assert!(r.misfetches + r.mispredicts <= r.breaks, "{}", r.engine);
    }
}

#[test]
fn perfect_call_return_nesting_never_mispredicts_the_stack() {
    // call -> leaf -> return, repeated; after warmup every return is
    // predicted by the RAS.
    let mut trace = Vec::new();
    for _ in 0..50 {
        trace.push(br(0x100, BreakKind::Call, true, 0x2000));
        trace.push(seq(0x2000));
        trace.push(br(0x2004, BreakKind::Return, true, 0x104));
        trace.push(br(0x104, BreakKind::Unconditional, true, 0x100));
    }
    for spec in [EngineSpec::btb(128, 1), EngineSpec::nls_table(1024)] {
        let mut engines = vec![spec.build(CacheConfig::paper(8, 1))];
        drive(&trace, &mut engines);
        let r = engines[0].result("micro");
        // Only cold-start misfetches; steady state is fully correct.
        assert!(r.mispredicts == 0, "{}: {} mispredicts", r.engine, r.mispredicts);
        assert!(r.misfetches <= 4, "{}: {} misfetches", r.engine, r.misfetches);
    }
}

#[test]
fn ras_overflow_costs_mispredicts() {
    // A call chain deeper than the 32-entry return stack: the
    // innermost 32 returns predict correctly, the outer ones pop
    // stale entries.
    let depth = 40u64;
    let mut trace = Vec::new();
    for i in 0..depth {
        // call site for level i lives at 0x100 + i*0x40
        trace.push(br(0x100 + i * 0x40, BreakKind::Call, true, 0x100 + (i + 1) * 0x40));
    }
    for i in (0..depth).rev() {
        let ret_pc = 0x100 + (i + 1) * 0x40;
        trace.push(br(ret_pc, BreakKind::Return, true, 0x100 + i * 0x40 + 4));
    }
    let mut engines = vec![EngineSpec::nls_table(4096).build(CacheConfig::paper(32, 1))];
    drive(&trace, &mut engines);
    let r = engines[0].result("micro");
    // 8 returns lost their stack entries (depth 40 vs capacity 32).
    assert!(r.mispredicts >= 8, "expected >= 8 overflow mispredicts, got {}", r.mispredicts);
}

#[test]
fn alternating_branch_is_learned_by_the_two_level_pht() {
    // T N T N ... : bimodal-style predictors ping-pong on this, the
    // paper's gshare learns it once the history warms up.
    let mut trace = Vec::new();
    for i in 0..600 {
        trace.push(br(0x100, BreakKind::Conditional, i % 2 == 0, 0x300));
        trace.push(seq(if i % 2 == 0 { 0x300 } else { 0x104 }));
        trace.push(br(
            if i % 2 == 0 { 0x304 } else { 0x108 },
            BreakKind::Unconditional,
            true,
            0xfc,
        ));
        trace.push(seq(0xfc));
    }
    let mut engines = vec![EngineSpec::nls_table(1024).build(CacheConfig::paper(8, 1))];
    drive(&trace, &mut engines);
    let r = engines[0].result("micro");
    let cond_mispredicts = r.mispredicts;
    assert!(
        cond_mispredicts < 60,
        "gshare should learn the alternating pattern: {cond_mispredicts} mispredicts of 600"
    );
}

#[test]
fn displacing_a_target_line_hurts_nls_but_not_btb() {
    let cache = CacheConfig::paper(8, 1);
    let target = 0x800u64;
    let conflicting = target + cache.size_bytes; // same cache set
    let branch = br(0x100, BreakKind::Unconditional, true, target);

    let run = |spec: EngineSpec| {
        let mut engines = vec![spec.build(cache)];
        let trace = vec![
            // Warm up the predictor and the cache.
            branch,
            seq(target),
            branch,
            seq(target),
            // Displace the target line, then run the branch again.
            seq(conflicting),
            branch,
            seq(target),
        ];
        drive(&trace, &mut engines);
        engines[0].result("micro")
    };

    let nls = run(EngineSpec::nls_table(1024));
    let btb = run(EngineSpec::btb(128, 1));
    // Both misfetch once cold; the NLS also misfetches on the
    // displaced line (its pointer went stale), the BTB does not (it
    // re-fetches by full address and simply takes a cache miss).
    assert_eq!(btb.misfetches, 1, "BTB: only the cold misfetch");
    assert_eq!(nls.misfetches, 2, "NLS: cold + stale-pointer misfetch");
    assert_eq!(nls.mispredicts, 0);
}
