#!/usr/bin/env bash
# Load-test a running `nls serve`: N concurrent clients each fire M
# simulate requests, then the script reports latency percentiles and
# the shed rate (429/503 responses from admission control). Shed
# responses are excluded from the percentiles — a rejection in
# single-digit milliseconds would otherwise flatter the latency.
#
# Usage:
#   nls serve --port 8080 --jobs 4 &
#   tools/loadtest.sh                          # 8 clients x 25 requests
#   tools/loadtest.sh http://127.0.0.1:9090 16 50
set -euo pipefail

URL="${1:-http://127.0.0.1:8080}"
CLIENTS="${2:-8}"
REQUESTS="${3:-25}"
BODY='{"bench": "li", "cache": "8K:1", "len": 200000, "seed": 7}'

command -v curl >/dev/null || { echo "error: loadtest needs curl" >&2; exit 2; }
curl -fsS --max-time 5 "$URL/healthz" >/dev/null || {
    echo "error: no healthy server at $URL — start one with: nls serve" >&2
    exit 2
}

out=$(mktemp -d)
trap 'rm -rf "$out"' EXIT

for c in $(seq 1 "$CLIENTS"); do
    (
        for _ in $(seq 1 "$REQUESTS"); do
            curl -sS -o /dev/null --max-time 30 \
                -H 'content-type: application/json' \
                -w '%{http_code} %{time_total}\n' \
                -X POST --data "$BODY" "$URL/v1/simulate" \
                || echo "000 0"
        done > "$out/client-$c"
    ) &
done
wait

cat "$out"/client-* > "$out/all"
total=$(wc -l < "$out/all")
shed=$(awk '$1 == 429 || $1 == 503' "$out/all" | wc -l)
ok=$(awk '$1 == 200 || $1 == 202' "$out/all" | wc -l)
errors=$((total - shed - ok))

awk '$1 == 200 || $1 == 202 { print $2 }' "$out/all" | sort -n > "$out/lat"
pct() {
    local n rank
    n=$(wc -l < "$out/lat")
    if [[ "$n" -eq 0 ]]; then
        echo "n/a"
        return
    fi
    rank=$(( ($1 * n + 99) / 100 ))
    [[ "$rank" -lt 1 ]] && rank=1
    awk -v r="$rank" 'NR == r { printf "%.1f ms", $1 * 1000 }' "$out/lat"
}

echo "loadtest: $CLIENTS clients x $REQUESTS requests against $URL"
echo "  accepted : $ok"
echo "  shed     : $shed ($(awk -v s="$shed" -v t="$total" \
    'BEGIN { printf "%.1f", t ? 100 * s / t : 0 }')% of $total)"
echo "  errors   : $errors"
echo "  p50      : $(pct 50)"
echo "  p99      : $(pct 99)"
