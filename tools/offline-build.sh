#!/usr/bin/env bash
# Offline verification build: compiles the whole workspace with bare
# rustc, substituting the std-only stubs in tools/stubs/ for the three
# external dependencies (rand, parking_lot, crossbeam). For containers
# where crates.io is unreachable and `cargo build` cannot even resolve
# the lockfile. CI and normal development should keep using cargo;
# nothing here is wired into the Cargo workspace.
#
# Usage:
#   tools/offline-build.sh          # build everything
#   tools/offline-build.sh test     # build everything + run offline-safe tests
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/offline
mkdir -p "$OUT"

# Compile-time env cargo would normally provide (repro_all re-invokes
# the build tool through env!("CARGO")).
export CARGO="${CARGO:-cargo}"

RUSTC_FLAGS=(--edition 2021 -L "dependency=$OUT" -Dwarnings -Aunused-imports)

# Optimisation level for perf measurement (e.g. NLS_OFFLINE_OPT=3 for
# the throughput bench). Defaults to unoptimised for fast edit cycles.
if [[ -n "${NLS_OFFLINE_OPT:-}" ]]; then
    RUSTC_FLAGS+=(-C "opt-level=${NLS_OFFLINE_OPT}")
fi

# Extra rustc flags, word-split on purpose (e.g.
# NLS_OFFLINE_EXTRA_FLAGS="-C debuginfo=1" from tools/profile.sh).
if [[ -n "${NLS_OFFLINE_EXTRA_FLAGS:-}" ]]; then
    # shellcheck disable=SC2206
    RUSTC_FLAGS+=(${NLS_OFFLINE_EXTRA_FLAGS})
fi

ext() { # name -> --extern name=$OUT/libname.rlib
    echo "--extern" "$1=$OUT/lib$1.rlib"
}

lib() { # crate_name path externs...
    local name=$1 path=$2
    shift 2
    local externs=()
    for dep in "$@"; do externs+=($(ext "$dep")); done
    echo "lib  $name"
    rustc "${RUSTC_FLAGS[@]}" --out-dir "$OUT" --crate-type rlib \
        --crate-name "$name" "${externs[@]}" "$path"
}

bin() { # bin_name path externs...
    local name=$1 path=$2
    shift 2
    local externs=()
    for dep in "$@"; do externs+=($(ext "$dep")); done
    echo "bin  $name"
    rustc "${RUSTC_FLAGS[@]}" --crate-name "${name//-/_}" "${externs[@]}" \
        "$path" -o "$OUT/$name"
}

test_bin() { # test_name path externs...
    local name=$1 path=$2
    shift 2
    local externs=()
    for dep in "$@"; do externs+=($(ext "$dep")); done
    echo "test $name"
    rustc "${RUSTC_FLAGS[@]}" --test --crate-name "$name" \
        "${externs[@]}" "$path" -o "$OUT/test_$name"
}

# --- dependency stubs (never shipped; see tools/stubs/README note) ---
lib rand tools/stubs/rand/lib.rs
lib parking_lot tools/stubs/parking_lot/lib.rs
lib crossbeam tools/stubs/crossbeam/lib.rs

# --- workspace crates, dependency order ---
lib nls_trace crates/trace/src/lib.rs rand
lib nls_icache crates/icache/src/lib.rs nls_trace
lib nls_predictors crates/predictors/src/lib.rs nls_trace nls_icache
lib nls_core crates/core/src/lib.rs nls_trace nls_icache nls_predictors crossbeam parking_lot
lib nls_cost crates/cost/src/lib.rs
lib nls_cli crates/cli/src/lib.rs nls_trace nls_icache nls_predictors nls_core nls_cost
lib nls_bench crates/bench/src/lib.rs nls_trace nls_icache nls_predictors nls_core nls_cost
lib nextline src/lib.rs nls_trace nls_icache nls_predictors nls_core nls_cost
lib nls_lint crates/lint/src/lib.rs

# --- binaries ---
bin nls crates/cli/src/main.rs nls_cli nls_core
bin nls-lint crates/lint/src/main.rs nls_lint
for b in crates/bench/src/bin/*.rs; do
    bin "$(basename "$b" .rs)" "$b" \
        nls_bench nls_trace nls_icache nls_predictors nls_core nls_cost
done

if [[ "${1:-}" != "test" ]]; then
    echo "offline build OK"
    exit 0
fi

# --- unit tests (in-crate #[cfg(test)] modules) ---
test_bin nls_trace crates/trace/src/lib.rs rand
test_bin nls_icache crates/icache/src/lib.rs nls_trace
test_bin nls_predictors crates/predictors/src/lib.rs nls_trace nls_icache
test_bin nls_core crates/core/src/lib.rs nls_trace nls_icache nls_predictors crossbeam parking_lot
test_bin nls_cost crates/cost/src/lib.rs
test_bin nls_cli crates/cli/src/lib.rs nls_trace nls_icache nls_predictors nls_core nls_cost
test_bin nls_lint crates/lint/src/lib.rs

# --- integration tests that need no registry crates ---
test_bin corruption crates/trace/tests/corruption.rs nls_trace
test_bin calibration crates/trace/tests/calibration.rs nls_trace
test_bin fault_tolerance crates/core/tests/fault_tolerance.rs \
    nls_core nls_trace nls_icache nls_predictors
test_bin block_differential crates/core/tests/block_differential.rs \
    nls_core nls_trace nls_icache nls_predictors
CARGO_BIN_EXE_nls="$PWD/$OUT/nls" test_bin e2e_cli crates/cli/tests/e2e_cli.rs \
    nls_cli nls_core nls_trace
test_bin end_to_end tests/end_to_end.rs nextline
test_bin micro_traces tests/micro_traces.rs nextline
test_bin lint_fixtures crates/lint/tests/fixtures.rs nls_lint
CARGO_MANIFEST_DIR="$PWD/crates/lint" test_bin lint_analysis crates/lint/tests/analysis.rs nls_lint
NLS_LINT_BIN="$PWD/$OUT/nls-lint" test_bin lint_fix_idempotency crates/lint/tests/fix_idempotency.rs nls_lint

fail=0
for t in "$OUT"/test_*; do
    [[ -x $t ]] || continue
    echo "run  $(basename "$t")"
    "$t" --test-threads "$(nproc)" -q || fail=1
done
if [[ $fail -ne 0 ]]; then
    echo "offline tests FAILED"
    exit 1
fi
echo "offline build + tests OK"
