#!/usr/bin/env bash
# Profile the hot step path: builds the throughput bench at opt-level
# 3 (with debug line info so samples resolve to source) and runs it
# under `perf record`, falling back to a plain timed run when perf is
# unavailable or lacks permission (common in containers).
#
# Usage:
#   tools/profile.sh                 # perf-record the throughput bench
#   tools/profile.sh report          # open the last recording
#   NLS_THROUGHPUT_RECORDS=8_000_000 tools/profile.sh   # longer run
set -euo pipefail
cd "$(dirname "$0")/.."

OUT=target/offline
PERF_DATA="$OUT/perf.data"
BIN="$OUT/throughput"

if [[ "${1:-}" == report ]]; then
    if [[ ! -f "$PERF_DATA" ]]; then
        echo "error: no recording at $PERF_DATA — run tools/profile.sh first" >&2
        exit 2
    fi
    exec perf report -i "$PERF_DATA"
fi

echo "profile: building throughput bench (opt-level=3, line debuginfo)"
NLS_OFFLINE_OPT=3 NLS_OFFLINE_EXTRA_FLAGS="-C debuginfo=1" ./tools/offline-build.sh >/dev/null

if command -v perf >/dev/null 2>&1 && perf record -o "$PERF_DATA" -e task-clock -- true >/dev/null 2>&1; then
    echo "profile: recording with perf (call graphs, output $PERF_DATA)"
    perf record -o "$PERF_DATA" -g --call-graph dwarf -- "$BIN" "$@"
    echo
    echo "profile: top symbols"
    perf report -i "$PERF_DATA" --stdio --percent-limit 1 | head -40
    echo
    echo "profile: full report with 'tools/profile.sh report'"
else
    echo "profile: perf unavailable (not installed, or perf_event_paranoid too strict)"
    echo "profile: falling back to a timed run — rates below, no per-symbol breakdown"
    exec "$BIN" "$@"
fi
