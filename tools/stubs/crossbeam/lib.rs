//! Offline stand-in for `crossbeam`, used only by
//! `tools/offline-build.sh` (no registry access in the verification
//! container). Implements `crossbeam::scope` on top of
//! `std::thread::scope`; only the surface the workspace uses.

use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

#[derive(Clone, Copy)]
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope std::thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    pub fn spawn<F, T>(&self, f: F) -> std::thread::ScopedJoinHandle<'scope, T>
    where
        F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
        T: Send + 'scope,
    {
        let handle = *self;
        self.inner.spawn(move || f(&handle))
    }
}

pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    catch_unwind(AssertUnwindSafe(|| {
        std::thread::scope(|s| f(&Scope { inner: s }))
    }))
}
