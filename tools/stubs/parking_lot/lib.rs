//! Offline stand-in for `parking_lot`, used only by
//! `tools/offline-build.sh` (no registry access in the verification
//! container). Wraps `std::sync::Mutex` and ignores poisoning, matching
//! `parking_lot::Mutex`'s panic-transparent lock semantics.

pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Self(std::sync::Mutex::new(value))
    }

    pub fn into_inner(self) -> T {
        match self.0.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> std::sync::MutexGuard<'_, T> {
        match self.0.lock() {
            Ok(guard) => guard,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}
