//! Offline stand-in for the `rand` crate, used only by
//! `tools/offline-build.sh` so the workspace can be type-checked and
//! unit-tested in containers with no registry access. Real builds (CI,
//! developer machines) use the genuine `rand` from crates.io; this stub
//! mirrors just the API surface the workspace touches: `SmallRng`,
//! `SeedableRng::seed_from_u64`, and `Rng::{random, random_bool,
//! random_range}`.
//!
//! The generator is xoshiro256++ seeded per the xoshiro authors'
//! recommendation (SplitMix64 expansion of the `u64` seed) — the same
//! family the real `SmallRng` uses on 64-bit targets. Exact stream
//! equality with a given `rand` release is not guaranteed (their
//! integer range sampling may consume extra draws), so seeded outputs
//! are close to, but not byte-comparable with, real builds.

use std::ops::{Bound, RangeBounds};

pub mod rngs {
    /// Small, fast RNG. Stub counterpart of `rand::rngs::SmallRng`
    /// (xoshiro256++).
    #[derive(Clone, Debug)]
    pub struct SmallRng {
        pub(crate) s: [u64; 4],
    }

    impl SmallRng {
        pub(crate) fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

pub trait SeedableRng: Sized {
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for rngs::SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        // SplitMix64 expansion, as the xoshiro reference code and the
        // real `SmallRng` both do for integer seeds.
        let mut state = seed;
        let mut s = [0u64; 4];
        for word in &mut s {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            *word = z ^ (z >> 31);
        }
        Self { s }
    }
}

/// Types `Rng::random` can produce in this stub.
pub trait FromRandom {
    fn from_u64(bits: u64) -> Self;
}

impl FromRandom for f64 {
    fn from_u64(bits: u64) -> Self {
        // 53 random mantissa bits -> uniform in [0, 1).
        (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRandom for u32 {
    fn from_u64(bits: u64) -> Self {
        (bits >> 32) as u32
    }
}

impl FromRandom for u64 {
    fn from_u64(bits: u64) -> Self {
        bits
    }
}

/// Types `Rng::random_range` can sample in this stub.
pub trait SampleUniform: Sized + Copy {
    fn sample<R: RangeBounds<Self>>(bits: u64, unit: f64, range: R) -> Self;
}

macro_rules! impl_sample_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample<R: RangeBounds<Self>>(bits: u64, _unit: f64, range: R) -> Self {
                let lo = match range.start_bound() {
                    Bound::Included(&v) => v,
                    Bound::Excluded(&v) => v + 1,
                    Bound::Unbounded => <$t>::MIN,
                };
                let hi = match range.end_bound() {
                    Bound::Included(&v) => v,
                    Bound::Excluded(&v) => v - 1,
                    Bound::Unbounded => <$t>::MAX,
                };
                assert!(lo <= hi, "empty sample range");
                let span = (hi - lo) as u128 + 1;
                lo + (bits as u128 % span) as $t
            }
        }
    )*};
}

impl_sample_int!(u8, u16, u32, u64, usize);

impl SampleUniform for f64 {
    fn sample<R: RangeBounds<Self>>(_bits: u64, unit: f64, range: R) -> Self {
        let lo = match range.start_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => 0.0,
        };
        let hi = match range.end_bound() {
            Bound::Included(&v) | Bound::Excluded(&v) => v,
            Bound::Unbounded => 1.0,
        };
        lo + unit * (hi - lo)
    }
}

pub trait Rng {
    fn next_bits(&mut self) -> u64;

    fn random<T: FromRandom>(&mut self) -> T {
        T::from_u64(self.next_bits())
    }

    fn random_bool(&mut self, p: f64) -> bool {
        self.random::<f64>() < p
    }

    fn random_range<T: SampleUniform, R: RangeBounds<T>>(&mut self, range: R) -> T {
        let bits = self.next_bits();
        let unit = f64::from_u64(bits);
        T::sample(bits, unit, range)
    }
}

impl Rng for rngs::SmallRng {
    fn next_bits(&mut self) -> u64 {
        self.next_u64()
    }
}
